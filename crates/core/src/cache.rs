//! Two-tier content-addressed cache of pipeline artifacts.
//!
//! The paper's central economy is amortization: the one-time artifacts of the
//! pipeline — the signature profile and the barrierpoint selection — serve
//! *many* detailed simulations, and (Figure 6) even transfer across machine
//! configurations.  [`ArtifactCache`] keeps all three stage artifacts so that
//! design-space sweeps pay their one-time costs exactly once, in **two
//! tiers**:
//!
//! * a **memory tier**: decoded artifacts (`Arc<ApplicationProfile>`,
//!   `Arc<BarrierPointSelection>`, `Arc<Simulated>`) held in-process, shared
//!   across clones of the cache like the stat counters.  A memory hit is a
//!   pointer clone — no I/O, no deserialization — which is what makes warm
//!   *in-process* re-sweeps drop below the disk tier's decode floor.  The
//!   tier has its own LRU order and byte bound
//!   ([`ArtifactCache::with_memory_max_bytes`], charged at serialized entry
//!   size).
//! * a **disk tier**: the persistent, self-validating entry files that
//!   survive the process and carry the amortization across runs.
//!
//! Lookups check memory first and fall back to disk; a successful disk decode
//! populates the memory tier, and stores write through both tiers.  Keying is
//! identical in both tiers:
//!
//! * **Profiles** are keyed by the workload's
//!   [`profile_fingerprint`](Workload::profile_fingerprint) (a content
//!   address over everything that determines the traces: name, thread count,
//!   seed, scale, phase structure).
//! * **Selections** are keyed by the same fingerprint *plus* a fingerprint of
//!   the [`SignatureConfig`] and the selection strategy
//!   ([`SelectionStrategy::fingerprint_bytes`]) that produced them, so a
//!   changed clustering parameter — of any backend — can never alias a
//!   cached selection.  The default SimPoint strategy's bytes equal the
//!   serialized `SimPointConfig` the key hashed historically, keeping warm
//!   caches valid across the strategy seam.
//! * **Simulated legs** are keyed by the leg workload's fingerprint, the
//!   selection *content* fingerprint, and a fingerprint of the
//!   `(SimConfig, WarmupKind)` pair.
//!
//! Disk entries are self-validating: a magic number, a format version, and
//! the full key are stored in the header, and every entry carries a trailing
//! FNV-1a checksum of its bytes.  Any mismatch — version bump, fingerprint
//! collision on the truncated file name, torn tail, a single flipped payload
//! bit — is treated as a miss rather than an error (a later store self-heals
//! the entry).  An entry is marked recently-used only *after* it decodes
//! successfully, so corrupt or stale garbage can never be promoted over
//! valid entries in the disk tier's LRU order.  Only genuine I/O failures
//! surface as [`Error::ProfileCache`].
//!
//! The cache keeps shared hit/miss counters ([`ArtifactCache::stats`];
//! clones share them, and every counter distinguishes the serving tier) and
//! the disk tier can be size-bounded with
//! [`ArtifactCache::with_max_bytes`], which evicts least-recently-used
//! entries (by file modification time — successful loads touch entries)
//! after every store.
//!
//! # Robustness (see `STORAGE.md`)
//!
//! Every disk operation flows through the [`Storage`] seam
//! ([`ArtifactCache::with_storage`]), so the failure paths below are
//! deterministically testable with [`crate::storage::FaultFs`]:
//!
//! * **Degrade to recompute** — the `load_or_*`/probe paths classify I/O
//!   failures ([`classify_io_error`]): transient kinds are retried a
//!   bounded number of times with capped backoff; persistent failures are
//!   treated as a miss (load) or a skipped disk store (store), so a sweep
//!   outlives a full disk or an unreadable entry.  Every artifact is
//!   recomputable — losing the cache costs time, never correctness.  The
//!   `degraded_loads`/`degraded_stores`/`retries` counters record it.  The
//!   raw `load*`/`store*` API keeps strict [`Error::ProfileCache`] errors.
//! * **Cross-process safety** — eviction and orphan-tmp cleanup run under
//!   an advisory `.lock` file (create-exclusive, stale-holder takeover by
//!   pid+timestamp), so two processes' scans cannot double-count or delete
//!   each other's just-renamed entries, and a live writer's tmp file
//!   cannot be reaped mid-store.  Contention skips the scan (deferring the
//!   bound to a later store) and bumps `lock_contended`.
//! * **Crash consistency** — entries become visible only by atomic rename
//!   of a fully written tmp file and self-validate on load, so a reopened
//!   cache serves either the bit-identical artifact or a clean miss, never
//!   corruption (pinned by the kill-point torture suite,
//!   `tests/storage_torture.rs`).
//!
//! Session counters can be persisted across restarts: a versioned,
//! corrupt-tolerant `cache-state` file written by [`ArtifactCache::flush`]
//! (and on drop of the last handle) and merged into
//! [`ArtifactCache::lifetime_stats`] — a bad state file resets the lifetime
//! view, it never errors.

use crate::error::{classify_io_error, Error, IoErrorClass};
use crate::memtier::MemoryTier;
use crate::profile::{profile_application_with, ApplicationProfile};
use crate::segment::WorkloadCheckpoints;
use crate::select::{select_barrierpoints_with, BarrierPointSelection};
use crate::simulate::WarmupKind;
use crate::stages::Simulated;
use crate::storage::{RealFs, Storage};
use crate::sync::{Arc, AtomicU64, Mutex, Ordering};
use bp_clustering::SelectionStrategy;
use bp_exec::ExecutionPolicy;
use bp_signature::SignatureConfig;
use bp_sim::SimConfig;
use bp_workload::{FingerprintHasher, Workload};
use std::io::{self, ErrorKind};
use std::path::{Path, PathBuf};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Magic bytes at the start of every profile cache file.
const PROFILE_MAGIC: &[u8; 4] = b"BPPF";
/// Magic bytes at the start of every selection cache file.
const SELECTION_MAGIC: &[u8; 4] = b"BPSL";
/// Magic bytes at the start of every simulated-leg cache file.
const SIMULATED_MAGIC: &[u8; 4] = b"BPSM";
/// Magic bytes at the start of every region-segment checkpoint cache file.
const CHECKPOINT_MAGIC: &[u8; 4] = b"BPCK";
/// Bump whenever the serialized layout of a cached artifact (or the entry
/// header) changes; old entries then read as misses and are overwritten.
/// Version 3 added the trailing integrity checksum (see [`seal`]).
/// Version 4 added the region-segment checkpoint (`ckpt`) artifact kind.
const FORMAT_VERSION: u32 = 4;
/// File extensions of the four artifact kinds (also the eviction scan
/// filter).
const PROFILE_EXT: &str = "bpprof";
const SELECTION_EXT: &str = "bpsel";
const SIMULATED_EXT: &str = "bpsim";
const CHECKPOINT_EXT: &str = "bpckpt";

/// Name of the persisted-statistics file inside the cache directory.  No
/// artifact extension, so the eviction scan neither counts nor deletes it.
const STATE_FILE: &str = "cache-state";
/// Magic bytes at the start of the persisted-statistics file.
const STATE_MAGIC: &[u8; 4] = b"BPST";
/// Version of the persisted-statistics layout; a mismatch resets the
/// lifetime view instead of erroring.  Version 2 added the trailing
/// integrity checksum (see [`seal`]); version 3 added the checkpoint-kind
/// counters.
const STATE_VERSION: u32 = 3;
/// Name of the advisory lock file serializing eviction and orphan cleanup
/// across processes.  Leading dot: `Path::extension` is `None`, so the scan
/// ignores it.
const LOCK_FILE: &str = ".lock";
/// Maximum storage attempts per primitive operation (1 initial + retries)
/// for transiently failing I/O.
const MAX_IO_ATTEMPTS: u32 = 3;
/// Base backoff between retries; doubles per retry (1ms, 2ms — bounded by
/// `MAX_IO_ATTEMPTS`, so the total added latency is at most 3ms).
const RETRY_BACKOFF_BASE: Duration = Duration::from_millis(1);
/// Attempts to acquire the advisory lock before declaring contention and
/// skipping the guarded scan.
const LOCK_ATTEMPTS: u32 = 8;
/// Sleep between lock acquisition attempts while the holder looks live.
const LOCK_RETRY_SLEEP: Duration = Duration::from_millis(1);
/// Default age after which a lock holder is presumed dead and taken over.
const DEFAULT_LOCK_STALE_AFTER: Duration = Duration::from_secs(30);
/// Minimum age before an orphaned tmp (or takeover leftover) is reaped by
/// the lock-guarded cleanup.  The lock already excludes every writer that
/// cooperates; the grace period protects the tmp files of a writer that
/// proceeded *without* the lock (contention degraded it) from being reaped
/// mid-store.
const ORPHAN_GRACE: Duration = Duration::from_secs(5);

/// Process-wide sequence for unique tmp/takeover file names: two threads of
/// one process storing the same key must not share a tmp path, or the
/// loser's rename fails on the path the winner already consumed.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Draws the next unique per-process file-name sequence number.
fn next_seq() -> u64 {
    // ordering: Relaxed — the sequence only needs per-process uniqueness,
    // which fetch_add's atomicity alone provides.
    TMP_SEQ.fetch_add(1, Ordering::Relaxed)
}

/// Milliseconds since the UNIX epoch (0 if the clock predates it).
fn epoch_ms() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_millis() as u64).unwrap_or_default()
}

/// The content address of one profile: everything the cache needs to locate
/// and validate an entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProfileCacheKey {
    workload_name: String,
    threads: usize,
    fingerprint: u64,
}

impl ProfileCacheKey {
    /// Computes the key for `workload`.
    pub fn for_workload<W: Workload + ?Sized>(workload: &W) -> Self {
        Self {
            workload_name: workload.name().to_string(),
            threads: workload.num_threads(),
            fingerprint: workload.profile_fingerprint(),
        }
    }

    /// The workload name component.
    pub fn workload_name(&self) -> &str {
        &self.workload_name
    }

    /// The content fingerprint component.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// File name of this entry inside a cache directory: human-readable
    /// prefix plus the full fingerprint in hex.
    fn file_name(&self) -> String {
        format!(
            "{}-{}t-{:016x}.{PROFILE_EXT}",
            sanitize(&self.workload_name),
            self.threads,
            self.fingerprint
        )
    }
}

/// The content address of one workload's region-segment checkpoints
/// ([`WorkloadCheckpoints`]): the same identity as a profile — workload
/// name, thread count, content fingerprint — under its own extension, so
/// one checkpoint set exists per workload content.  Configuration knobs
/// (signature config, strategy) are deliberately *not* part of the key:
/// checkpoints capture observer state along the trace, which depends only
/// on the trace itself, so one cold walk's checkpoints serve every later
/// re-walk of that workload regardless of why it re-walks.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CheckpointCacheKey {
    workload_name: String,
    threads: usize,
    fingerprint: u64,
}

impl CheckpointCacheKey {
    /// Computes the key for `workload`.
    pub fn for_workload<W: Workload + ?Sized>(workload: &W) -> Self {
        Self {
            workload_name: workload.name().to_string(),
            threads: workload.num_threads(),
            fingerprint: workload.profile_fingerprint(),
        }
    }

    /// The workload name component.
    pub fn workload_name(&self) -> &str {
        &self.workload_name
    }

    /// The content fingerprint component.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    fn file_name(&self) -> String {
        format!(
            "{}-{}t-{:016x}.{CHECKPOINT_EXT}",
            sanitize(&self.workload_name),
            self.threads,
            self.fingerprint
        )
    }
}

/// The content address of one barrierpoint selection: the profile's identity
/// plus a fingerprint of the `(SignatureConfig, SelectionStrategy)` pair
/// that derived the selection from it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SelectionCacheKey {
    workload_name: String,
    threads: usize,
    profile_fingerprint: u64,
    config_fingerprint: u64,
}

impl SelectionCacheKey {
    /// Computes the key for selecting barrierpoints from `profile_key`'s
    /// profile under `(signature_config, strategy)`.
    ///
    /// The configuration fingerprint hashes the serialized signature config
    /// followed by the strategy's identity bytes
    /// ([`SelectionStrategy::fingerprint_bytes`]).  For the default SimPoint
    /// strategy those bytes are exactly the serialized `SimPointConfig`, so
    /// the fingerprint — and with it the entry's file name — is unchanged
    /// from the pre-seam `(SignatureConfig, SimPointConfig)` derivation.
    pub fn new(
        profile_key: &ProfileCacheKey,
        signature_config: &SignatureConfig,
        strategy: &dyn SelectionStrategy,
    ) -> Self {
        let mut hasher = FingerprintHasher::new();
        hasher.write_bytes(&serde::to_vec(signature_config));
        hasher.write_bytes(&strategy.fingerprint_bytes());
        Self {
            workload_name: profile_key.workload_name.clone(),
            threads: profile_key.threads,
            profile_fingerprint: profile_key.fingerprint,
            config_fingerprint: hasher.finish(),
        }
    }

    /// Computes the key for `workload` under `(signature_config, strategy)`.
    pub fn for_workload<W: Workload + ?Sized>(
        workload: &W,
        signature_config: &SignatureConfig,
        strategy: &dyn SelectionStrategy,
    ) -> Self {
        Self::new(&ProfileCacheKey::for_workload(workload), signature_config, strategy)
    }

    /// The fingerprint of the profile the selection derives from.
    pub fn profile_fingerprint(&self) -> u64 {
        self.profile_fingerprint
    }

    /// The fingerprint of the `(SignatureConfig, SelectionStrategy)` pair.
    pub fn config_fingerprint(&self) -> u64 {
        self.config_fingerprint
    }

    fn file_name(&self) -> String {
        format!(
            "{}-{}t-{:016x}-{:016x}.{SELECTION_EXT}",
            sanitize(&self.workload_name),
            self.threads,
            self.profile_fingerprint,
            self.config_fingerprint
        )
    }
}

/// The content address of one detailed-simulation leg: the identity of the
/// workload instance that was simulated, the *content* of the barrierpoint
/// selection that drove it, and a fingerprint of the machine configuration
/// plus warmup technique.
///
/// Keying by selection content (not by how the selection was derived) means
/// a leg cached by one sweep is hit by any other pipeline arriving at the
/// same selection — including cross-core-count legs, where the selection
/// transfers across workload builds (the leg workload's own fingerprint
/// keeps those from aliasing).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SimulatedCacheKey {
    workload_name: String,
    threads: usize,
    workload_fingerprint: u64,
    selection_fingerprint: u64,
    config_fingerprint: u64,
}

impl SimulatedCacheKey {
    /// Computes the key for simulating `selection`'s barrierpoints of
    /// `workload` on `sim_config` under `warmup`.
    pub fn new<W: Workload + ?Sized>(
        workload: &W,
        selection: &BarrierPointSelection,
        sim_config: &SimConfig,
        warmup: WarmupKind,
    ) -> Self {
        Self::with_selection_fingerprint(workload, selection.fingerprint(), sim_config, warmup)
    }

    /// [`new`](Self::new) with a precomputed selection-content fingerprint:
    /// deriving the fingerprint serializes the whole selection, so a sweep
    /// deriving one key per design point computes it once and reuses it.
    pub(crate) fn with_selection_fingerprint<W: Workload + ?Sized>(
        workload: &W,
        selection_fingerprint: u64,
        sim_config: &SimConfig,
        warmup: WarmupKind,
    ) -> Self {
        Self {
            workload_name: workload.name().to_string(),
            threads: workload.num_threads(),
            workload_fingerprint: workload.profile_fingerprint(),
            selection_fingerprint,
            config_fingerprint: sim_config_fingerprint(sim_config, warmup),
        }
    }

    /// Assembles a key from fully precomputed components — the interned-key
    /// path of [`Sweep`](crate::Sweep), which derives every component once
    /// per sweep object instead of once per `run()`.
    pub(crate) fn from_parts(
        workload_name: String,
        threads: usize,
        workload_fingerprint: u64,
        selection_fingerprint: u64,
        config_fingerprint: u64,
    ) -> Self {
        Self {
            workload_name,
            threads,
            workload_fingerprint,
            selection_fingerprint,
            config_fingerprint,
        }
    }

    /// The fingerprint of the selection content the leg was driven by.
    pub fn selection_fingerprint(&self) -> u64 {
        self.selection_fingerprint
    }

    /// The fingerprint of the `(SimConfig, WarmupKind)` pair.
    pub fn config_fingerprint(&self) -> u64 {
        self.config_fingerprint
    }

    fn file_name(&self) -> String {
        format!(
            "{}-{}t-{:016x}-{:016x}-{:016x}.{SIMULATED_EXT}",
            sanitize(&self.workload_name),
            self.threads,
            self.workload_fingerprint,
            self.selection_fingerprint,
            self.config_fingerprint
        )
    }
}

/// The fingerprint of one `(SimConfig, WarmupKind)` pair — the machine
/// component of a [`SimulatedCacheKey`].
pub(crate) fn sim_config_fingerprint(sim_config: &SimConfig, warmup: WarmupKind) -> u64 {
    let mut hasher = FingerprintHasher::new();
    hasher.write_bytes(&serde::to_vec(sim_config));
    hasher.write_str(warmup.name());
    hasher.finish()
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
        .collect()
}

/// A point-in-time snapshot of a cache's hit/miss counters.
///
/// Counters are shared between clones of an [`ArtifactCache`], so one
/// snapshot accounts for every pipeline and sweep using that cache.  Hits
/// are split by serving tier: `*_memory_hits` were pointer clones of an
/// already-decoded artifact, `*_hits` were disk reads plus a decode (which
/// then populated the memory tier).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Profile lookups served from the in-process memory tier (no disk
    /// read, no decode).
    pub profile_memory_hits: u64,
    /// Profile lookups that were served from disk.
    pub profile_hits: u64,
    /// Profile lookups that had to re-profile (including corrupt entries).
    pub profile_misses: u64,
    /// Selection lookups served from the in-process memory tier.
    pub selection_memory_hits: u64,
    /// Selection lookups that were served from disk.
    pub selection_hits: u64,
    /// Selection lookups that had to re-cluster (including corrupt entries).
    pub selection_misses: u64,
    /// Simulated-leg lookups served from the in-process memory tier.
    pub simulated_memory_hits: u64,
    /// Simulated-leg lookups that were served from disk (the detailed
    /// simulation was skipped entirely).
    pub simulated_hits: u64,
    /// Simulated-leg lookups that had to simulate (including corrupt
    /// entries).
    pub simulated_misses: u64,
    /// Region-segment checkpoint lookups served from the in-process memory
    /// tier.
    pub checkpoint_memory_hits: u64,
    /// Region-segment checkpoint lookups that were served from disk.
    pub checkpoint_hits: u64,
    /// Region-segment checkpoint lookups that missed (including corrupt
    /// entries) — the next cold walk re-emits them.
    pub checkpoint_misses: u64,
    /// Disk entries deleted by LRU eviction.
    pub evictions: u64,
    /// Memory-tier entries dropped by its byte-bound LRU eviction (the disk
    /// copy survives, so a later lookup degrades to a disk hit, not a miss).
    pub memory_evictions: u64,
    /// Lookups whose disk read failed persistently (after retries) and
    /// degraded to a recompute instead of failing the caller.
    pub degraded_loads: u64,
    /// Stores whose disk write failed persistently (after retries) and were
    /// skipped — the artifact stayed resident in the memory tier only.
    pub degraded_stores: u64,
    /// Transient I/O failures that were retried (one count per retry, not
    /// per operation).
    pub retries: u64,
    /// Times the advisory lock could not be acquired and the guarded
    /// eviction/cleanup scan was skipped for that store.
    pub lock_contended: u64,
}

/// Number of `u64` counters in [`CacheStats`] (the persisted layout).
const STATS_FIELDS: usize = 18;

impl CacheStats {
    /// Total lookups served from the memory tier, over all artifact kinds.
    pub fn memory_hits(&self) -> u64 {
        self.profile_memory_hits
            + self.selection_memory_hits
            + self.simulated_memory_hits
            + self.checkpoint_memory_hits
    }

    /// Total lookups served from the disk tier, over all artifact kinds.
    pub fn disk_hits(&self) -> u64 {
        self.profile_hits + self.selection_hits + self.simulated_hits + self.checkpoint_hits
    }

    /// The field-wise (saturating) sum of two snapshots — how a persisted
    /// base merges with the current session's counters.
    pub fn merged(&self, other: &CacheStats) -> CacheStats {
        let mut merged = [0u64; STATS_FIELDS];
        for ((out, a), b) in merged.iter_mut().zip(self.as_array()).zip(other.as_array()) {
            *out = a.saturating_add(b);
        }
        CacheStats::from_array(merged)
    }

    /// The counters in their fixed persisted order.
    fn as_array(&self) -> [u64; STATS_FIELDS] {
        [
            self.profile_memory_hits,
            self.profile_hits,
            self.profile_misses,
            self.selection_memory_hits,
            self.selection_hits,
            self.selection_misses,
            self.simulated_memory_hits,
            self.simulated_hits,
            self.simulated_misses,
            self.checkpoint_memory_hits,
            self.checkpoint_hits,
            self.checkpoint_misses,
            self.evictions,
            self.memory_evictions,
            self.degraded_loads,
            self.degraded_stores,
            self.retries,
            self.lock_contended,
        ]
    }

    /// Rebuilds a snapshot from [`as_array`](Self::as_array)'s order.
    fn from_array(values: [u64; STATS_FIELDS]) -> Self {
        Self {
            profile_memory_hits: values[0],
            profile_hits: values[1],
            profile_misses: values[2],
            selection_memory_hits: values[3],
            selection_hits: values[4],
            selection_misses: values[5],
            simulated_memory_hits: values[6],
            simulated_hits: values[7],
            simulated_misses: values[8],
            checkpoint_memory_hits: values[9],
            checkpoint_hits: values[10],
            checkpoint_misses: values[11],
            evictions: values[12],
            memory_evictions: values[13],
            degraded_loads: values[14],
            degraded_stores: values[15],
            retries: values[16],
            lock_contended: values[17],
        }
    }
}

#[derive(Debug, Default)]
struct StatCounters {
    profile_memory_hits: AtomicU64,
    profile_hits: AtomicU64,
    profile_misses: AtomicU64,
    selection_memory_hits: AtomicU64,
    selection_hits: AtomicU64,
    selection_misses: AtomicU64,
    simulated_memory_hits: AtomicU64,
    simulated_hits: AtomicU64,
    simulated_misses: AtomicU64,
    checkpoint_memory_hits: AtomicU64,
    checkpoint_hits: AtomicU64,
    checkpoint_misses: AtomicU64,
    evictions: AtomicU64,
    memory_evictions: AtomicU64,
    degraded_loads: AtomicU64,
    degraded_stores: AtomicU64,
    retries: AtomicU64,
    lock_contended: AtomicU64,
    /// The persisted base loaded (lazily, once) from the `cache-state`
    /// file; [`ArtifactCache::lifetime_stats`] adds the session counters.
    persisted_base: Mutex<Option<CacheStats>>,
}

/// Counts one event on a statistics counter.
fn bump(counter: &AtomicU64) {
    // ordering: Relaxed — monotonic telemetry with no release obligation;
    // `stats()` snapshots carry no ordering relationship to the counted
    // events, and cross-thread counts are reconciled by the caller's own
    // joins (e.g. a sweep reads stats only after its legs complete).
    counter.fetch_add(1, Ordering::Relaxed);
}

/// Snapshots a statistics counter.
fn read(counter: &AtomicU64) -> u64 {
    // ordering: Relaxed — see `bump`.
    counter.load(Ordering::Relaxed)
}

/// Key space of the memory tier — the same content addresses as the disk
/// tier, one variant per artifact kind so kinds can never alias.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum MemoryKey {
    Profile(ProfileCacheKey),
    Selection(SelectionCacheKey),
    Simulated(SimulatedCacheKey),
    Checkpoint(CheckpointCacheKey),
}

/// A decoded artifact held by the memory tier.  Cloning is a pointer clone.
#[derive(Debug, Clone)]
enum MemoryArtifact {
    Profile(Arc<ApplicationProfile>),
    Selection(Arc<BarrierPointSelection>),
    Simulated(Arc<Simulated>),
    Checkpoint(Arc<WorkloadCheckpoints>),
}

// The tier itself — shard locks, the global LRU clock, byte accounting, and
// the cross-shard eviction scan — lives in [`crate::memtier`], where the
// protocol is generic over key and value so the interleaving model checker
// can drive it with small types.  The cache instantiates it with the
// content-address keys and `Arc`-wrapped artifacts above; a lookup takes one
// shard lock (plus two relaxed atomics) instead of a tier-wide mutex, while
// eviction order stays globally least-recently-used via the tier-wide clock
// (up to the documented stale-scan approximation, which can degrade the
// eviction choice but never evicts an entry a concurrent lookup just
// touched).

/// A two-tier cache of pipeline artifacts — [`ApplicationProfile`]s,
/// [`BarrierPointSelection`]s and [`Simulated`] legs — keyed by workload and
/// configuration content: an in-process memory tier of decoded artifacts in
/// front of a directory of serialized entries.
///
/// ```
/// use barrierpoint::{ArtifactCache, ExecutionPolicy, SignatureConfig};
/// use bp_clustering::{SimPointConfig, SimPointStrategy};
/// use bp_workload::{Benchmark, WorkloadConfig};
///
/// let dir = std::env::temp_dir().join(format!("bp-artifact-cache-doc-{}", std::process::id()));
/// # std::fs::remove_dir_all(&dir).ok();
/// let cache = ArtifactCache::new(&dir);
/// let workload = Benchmark::NpbIs.build(&WorkloadConfig::new(2).with_scale(0.02));
/// let strategy = SimPointStrategy::new(SimPointConfig::paper());
///
/// let (profile, was_cached) =
///     cache.load_or_profile(&workload, &ExecutionPolicy::parallel())?;
/// assert!(!was_cached);
/// let (selection, was_cached) = cache.load_or_select(
///     &profile,
///     &workload,
///     &SignatureConfig::combined(),
///     &strategy,
/// )?;
/// assert!(!was_cached);
///
/// // Second time around (same process), both one-time stages are pointer
/// // clones from the memory tier — stores write through both tiers.
/// let (_, was_cached) = cache.load_or_profile(&workload, &ExecutionPolicy::parallel())?;
/// assert!(was_cached);
/// let (again, was_cached) = cache.load_or_select(
///     &profile,
///     &workload,
///     &SignatureConfig::combined(),
///     &strategy,
/// )?;
/// assert!(was_cached);
/// assert_eq!(selection, again);
/// assert_eq!(cache.stats().profile_memory_hits, 1);
/// assert_eq!(cache.stats().selection_memory_hits, 1);
///
/// // A fresh cache handle over the same directory starts with a cold
/// // memory tier and decodes from disk instead.
/// let reopened = ArtifactCache::new(&dir);
/// let (_, was_cached) = reopened.load_or_profile(&workload, &ExecutionPolicy::parallel())?;
/// assert!(was_cached);
/// assert_eq!(reopened.stats().profile_hits, 1);
/// # std::fs::remove_dir_all(&dir).ok();
/// # Ok::<(), barrierpoint::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct ArtifactCache {
    root: PathBuf,
    max_bytes: Option<u64>,
    stats: Arc<StatCounters>,
    memory: Arc<MemoryTier<MemoryKey, MemoryArtifact>>,
    storage: Arc<dyn Storage>,
    lock_stale_after: Duration,
}

/// The pre-redesign name of [`ArtifactCache`], kept for continuity: the
/// profile-caching API is unchanged, the type has only grown selection
/// memoization, statistics and eviction.
pub type ProfileCache = ArtifactCache;

impl ArtifactCache {
    /// A cache rooted at `root` (created lazily on first store); both tiers
    /// unbounded, backed by the real filesystem.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        Self {
            root: root.into(),
            max_bytes: None,
            stats: Arc::default(),
            memory: Arc::default(),
            storage: Arc::new(RealFs::new()),
            lock_stale_after: DEFAULT_LOCK_STALE_AFTER,
        }
    }

    /// Replaces the storage backend — [`RealFs::durable`] for
    /// fsync-before-rename durability, or [`crate::storage::FaultFs`] in
    /// tests to inject faults into every disk path of the cache.
    pub fn with_storage(mut self, storage: Arc<dyn Storage>) -> Self {
        self.storage = storage;
        self
    }

    /// Overrides how old an advisory lock must be before a contender
    /// presumes its holder dead and takes it over (default 30s).  Torture
    /// tests shorten this so a simulated crash mid-store does not stall
    /// the reopened cache.
    pub fn with_lock_stale_after(mut self, stale_after: Duration) -> Self {
        self.lock_stale_after = stale_after;
        self
    }

    /// Bounds the cache's total on-disk size: after every store, entries are
    /// evicted least-recently-used first (by file modification time;
    /// successful loads touch entries) until the total drops to `max_bytes`
    /// or below.
    ///
    /// The bound is best-effort — a single entry larger than `max_bytes`
    /// is evicted only once a newer entry arrives.
    pub fn with_max_bytes(mut self, max_bytes: u64) -> Self {
        self.max_bytes = Some(max_bytes);
        self
    }

    /// Bounds the in-process memory tier (charged at serialized entry size):
    /// inserts drop least-recently-used memory entries until the tier fits.
    /// A dropped memory entry still has its disk copy, so later lookups
    /// degrade to disk hits, never to misses.  `0` disables the memory tier.
    ///
    /// The memory tier is shared across clones, so the bound applies to (and
    /// is visible from) every clone of this cache.
    pub fn with_memory_max_bytes(self, max_bytes: u64) -> Self {
        self.memory.set_max_bytes(Some(max_bytes));
        self
    }

    /// The cache directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The configured size bound, if any.
    pub fn max_bytes(&self) -> Option<u64> {
        self.max_bytes
    }

    /// A snapshot of the hit/miss/eviction counters, aggregated over every
    /// clone of this cache.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            profile_memory_hits: read(&self.stats.profile_memory_hits),
            profile_hits: read(&self.stats.profile_hits),
            profile_misses: read(&self.stats.profile_misses),
            selection_memory_hits: read(&self.stats.selection_memory_hits),
            selection_hits: read(&self.stats.selection_hits),
            selection_misses: read(&self.stats.selection_misses),
            simulated_memory_hits: read(&self.stats.simulated_memory_hits),
            simulated_hits: read(&self.stats.simulated_hits),
            simulated_misses: read(&self.stats.simulated_misses),
            checkpoint_memory_hits: read(&self.stats.checkpoint_memory_hits),
            checkpoint_hits: read(&self.stats.checkpoint_hits),
            checkpoint_misses: read(&self.stats.checkpoint_misses),
            evictions: read(&self.stats.evictions),
            memory_evictions: read(&self.stats.memory_evictions),
            degraded_loads: read(&self.stats.degraded_loads),
            degraded_stores: read(&self.stats.degraded_stores),
            retries: read(&self.stats.retries),
            lock_contended: read(&self.stats.lock_contended),
        }
    }

    /// The lifetime view of the counters: the persisted base from the
    /// directory's `cache-state` file (loaded lazily, once per cache; a
    /// missing, corrupt, or stale-versioned file contributes zero — never
    /// an error) merged with this cache's session counters
    /// ([`stats`](Self::stats)).  Persist the merged view with
    /// [`flush`](Self::flush); the last handle to drop flushes
    /// automatically.
    pub fn lifetime_stats(&self) -> CacheStats {
        self.persisted_base().merged(&self.stats())
    }

    /// Loads (once) and caches the persisted statistics base.
    fn persisted_base(&self) -> CacheStats {
        let mut slot = self.stats.persisted_base.lock();
        if let Some(base) = *slot {
            return base;
        }
        let base = self
            .storage
            .read(&self.root.join(STATE_FILE))
            .ok()
            .and_then(|bytes| decode_state(&bytes))
            .unwrap_or_default();
        *slot = Some(base);
        base
    }

    /// Persists the lifetime counters to the directory's `cache-state`
    /// file, atomically (tmp + rename).  Best-effort by design: a cache
    /// whose directory was removed must not resurrect it from a drop path,
    /// so failures (including a missing root) are swallowed.
    pub fn flush(&self) {
        let total = self.lifetime_stats();
        if total == CacheStats::default() {
            return;
        }
        let state = self.root.join(STATE_FILE);
        let tmp = state.with_extension(format!("tmp-{}-{}", std::process::id(), next_seq()));
        match self.storage.write(&tmp, &encode_state(&total)) {
            Ok(()) => {
                if self.storage.rename(&tmp, &state).is_err() {
                    let _ = self.storage.remove_file(&tmp);
                }
            }
            Err(_) => {
                let _ = self.storage.remove_file(&tmp);
            }
        }
    }

    fn profile_path(&self, key: &ProfileCacheKey) -> PathBuf {
        self.root.join(key.file_name())
    }

    fn selection_path(&self, key: &SelectionCacheKey) -> PathBuf {
        self.root.join(key.file_name())
    }

    fn simulated_path(&self, key: &SimulatedCacheKey) -> PathBuf {
        self.root.join(key.file_name())
    }

    fn checkpoint_path(&self, key: &CheckpointCacheKey) -> PathBuf {
        self.root.join(key.file_name())
    }

    fn io_error(&self, path: &Path, err: &io::Error) -> Error {
        Error::ProfileCache { path: path.display().to_string(), message: err.to_string() }
    }

    /// Runs a storage operation, retrying transient failures
    /// ([`IoErrorClass::Transient`]) up to [`MAX_IO_ATTEMPTS`] total
    /// attempts with doubling backoff.  The bound is deterministic — no
    /// jitter — so fault-injected tests replay identically.
    fn retrying<T>(&self, mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
        for attempt in 1..MAX_IO_ATTEMPTS {
            match op() {
                Err(e) if classify_io_error(e.kind()) == IoErrorClass::Transient => {
                    bump(&self.stats.retries);
                    std::thread::sleep(RETRY_BACKOFF_BASE * (1 << (attempt - 1)));
                }
                other => return other,
            }
        }
        op()
    }

    /// Reads an entry file's raw bytes.  Missing files return `Ok(None)`;
    /// other I/O failures (after transient retries) are errors.
    ///
    /// Deliberately does *not* touch the entry for LRU: a read alone proves
    /// nothing — the payload may be corrupt or stale-versioned, and marking
    /// it recently used would let garbage outlive valid entries under a size
    /// bound.  The `lookup_*` paths touch only after a successful decode.
    fn read_entry(&self, path: &Path) -> Result<Option<Vec<u8>>, Error> {
        match self.retrying(|| self.storage.read(path)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == ErrorKind::NotFound => Ok(None),
            Err(e) => Err(self.io_error(path, &e)),
        }
    }

    /// Marks a *validated* entry as most recently used.  Best effort —
    /// filesystems without mtime updates degrade to FIFO.
    fn touch_entry(&self, path: &Path) {
        if self.max_bytes.is_some() {
            let _ = self.storage.set_mtime(path, SystemTime::now());
        }
    }

    /// Writes an entry through a temporary file and an atomic rename so that
    /// concurrent readers never observe a torn entry, then (under the
    /// advisory lock, for size-bounded caches) cleans up orphans and
    /// enforces the size bound.  The temporary name carries the process id
    /// *and* a process-wide sequence number: two threads of one process
    /// storing the same key must not share a tmp path, or the loser's
    /// rename fails on the path the winner already consumed.
    ///
    /// On any failure the tmp file is deleted — a failed store must not
    /// leak a torn or orphaned tmp for the cleanup scan to deal with.
    fn write_entry(&self, path: &Path, bytes: &[u8]) -> Result<(), Error> {
        self.retrying(|| self.storage.create_dir_all(&self.root))
            .map_err(|e| self.io_error(&self.root, &e))?;
        let lock = if self.max_bytes.is_some() { self.try_lock() } else { None };
        let tmp = path.with_extension(format!("tmp-{}-{}", std::process::id(), next_seq()));
        if let Err(e) = self.retrying(|| self.storage.write(&tmp, bytes)) {
            // A torn write can leave a partial tmp file behind.
            let _ = self.storage.remove_file(&tmp);
            return Err(self.io_error(&tmp, &e));
        }
        if let Err(e) = self.retrying(|| self.storage.rename(&tmp, path)) {
            let _ = self.storage.remove_file(&tmp);
            return Err(self.io_error(path, &e));
        }
        if lock.is_some() {
            self.clean_and_evict(path);
        }
        drop(lock);
        Ok(())
    }

    /// [`write_entry`](Self::write_entry) on the degrade-to-recompute
    /// paths: a persistent failure skips the disk store (the memory tier
    /// still retains the artifact for this process) and records it, instead
    /// of failing the pipeline over a cache that is only an optimization.
    fn write_entry_degraded(&self, path: &Path, bytes: &[u8]) {
        if self.write_entry(path, bytes).is_err() {
            bump(&self.stats.degraded_stores);
        }
    }

    /// Tries to acquire the directory's advisory lock: create-exclusive
    /// `.lock` file carrying `pid` and a millisecond timestamp.  A lock
    /// older than [`Self::with_lock_stale_after`]'s bound is presumed
    /// abandoned (crashed holder) and taken over; takeover claims the stale
    /// file by *renaming* it to a unique name first, so two contenders can
    /// never both win the same stale lock.  Returns `None` (and counts the
    /// contention) if the lock stays held for [`LOCK_ATTEMPTS`] rounds.
    fn try_lock(&self) -> Option<DirLock<'_>> {
        let lock_path = self.root.join(LOCK_FILE);
        let body = format!("pid {} ts-ms {}\n", std::process::id(), epoch_ms());
        for _ in 0..LOCK_ATTEMPTS {
            match self.storage.create_new(&lock_path, body.as_bytes()) {
                Ok(()) => return Some(DirLock { cache: self }),
                Err(e) if e.kind() == ErrorKind::AlreadyExists => {
                    if self.lock_is_stale(&lock_path) {
                        self.reap_stale_lock(&lock_path);
                        // Retry the create immediately — no sleep.
                    } else {
                        std::thread::sleep(LOCK_RETRY_SLEEP);
                    }
                }
                // Anything else (root vanished, injected fault): no lock.
                Err(_) => break,
            }
        }
        bump(&self.stats.lock_contended);
        None
    }

    /// Whether the lock file's holder looks dead.  Prefers the timestamp
    /// embedded in the lock body; an unreadable or unparseable body (e.g.
    /// the holder died between creating the file and writing it) falls back
    /// to the file's mtime.  Unknowable states read as "live": a held lock
    /// must never be reaped on a hunch.
    fn lock_is_stale(&self, lock_path: &Path) -> bool {
        let stale_ms = self.lock_stale_after.as_millis() as u64;
        match self.storage.read(lock_path) {
            Ok(bytes) => match parse_lock_ts_ms(&bytes) {
                Some(ts) => epoch_ms().saturating_sub(ts) > stale_ms,
                None => self
                    .storage
                    .read_dir(&self.root)
                    .ok()
                    .and_then(|entries| entries.into_iter().find(|e| e.path == *lock_path))
                    .is_some_and(|e| {
                        e.modified.elapsed().unwrap_or_default() > self.lock_stale_after
                    }),
            },
            // Unreadable (often: released between create_new and here).
            Err(_) => false,
        }
    }

    /// Claims and removes a stale lock.  The rename is the claim: only one
    /// contender's rename of the stale file can succeed, so a racing pair
    /// cannot both proceed to hold the next lock generation.  (There is a
    /// small window between the staleness check and the rename in which the
    /// real holder could release and a new one appear; the harm is bounded
    /// to two concurrent *scans*, which degrade byte accounting, never
    /// entry integrity — see STORAGE.md.)
    fn reap_stale_lock(&self, lock_path: &Path) {
        let reap =
            self.root.join(format!("{LOCK_FILE}-reap-{}-{}", std::process::id(), next_seq()));
        if self.storage.rename(lock_path, &reap).is_ok() {
            let _ = self.storage.remove_file(&reap);
        }
    }

    /// Removes orphaned tmp files and enforces the size bound by deleting
    /// least-recently-used entries (oldest mtime first).  **Caller must
    /// hold the advisory lock**: the lock is what makes concurrent scans
    /// from two processes safe — without it they could double-count totals
    /// and delete each other's just-renamed entries.  `just_written` is
    /// exempt so a store can never evict its own entry.
    ///
    /// Orphan cleanup reaps tmp files (crashed writers, killed between
    /// write and rename) and takeover leftovers once they are older than
    /// [`ORPHAN_GRACE`] — long enough that a degraded writer operating
    /// without the lock has renamed or deleted its own tmp.  Orphans are
    /// not valid entries: they count toward neither the bound nor the
    /// eviction statistics.
    fn clean_and_evict(&self, just_written: &Path) {
        let Some(max_bytes) = self.max_bytes else { return };
        let Ok(entries) = self.storage.read_dir(&self.root) else { return };
        let now = SystemTime::now();
        let mut files: Vec<(SystemTime, u64, PathBuf)> = Vec::new();
        for entry in entries {
            let ext = entry.path.extension().and_then(|e| e.to_str());
            match ext {
                Some(PROFILE_EXT | SELECTION_EXT | SIMULATED_EXT | CHECKPOINT_EXT) => {
                    files.push((entry.modified, entry.len, entry.path));
                }
                _ => {
                    let name = entry.path.file_name().and_then(|n| n.to_str()).unwrap_or_default();
                    let orphan = ext.is_some_and(|e| e.starts_with("tmp-"))
                        || name.starts_with(concat!(".lock", "-reap-"));
                    let age = now.duration_since(entry.modified).unwrap_or_default();
                    if orphan && age >= ORPHAN_GRACE {
                        let _ = self.storage.remove_file(&entry.path);
                    }
                }
            }
        }
        let mut total: u64 = files.iter().map(|&(_, len, _)| len).sum();
        files.sort_by_key(|&(mtime, _, _)| mtime);
        for (_, len, path) in files {
            if total <= max_bytes {
                break;
            }
            if path == just_written {
                continue;
            }
            if self.storage.remove_file(&path).is_ok() {
                total = total.saturating_sub(len);
                bump(&self.stats.evictions);
            }
        }
    }

    /// Tiered profile lookup: memory first, then disk (a successful disk
    /// decode touches the entry and populates the memory tier).  The boolean
    /// is `true` when the memory tier served the hit.
    fn lookup_profile(
        &self,
        key: &ProfileCacheKey,
    ) -> Result<Option<(Arc<ApplicationProfile>, bool)>, Error> {
        if let Some(MemoryArtifact::Profile(profile)) =
            self.memory.get(&MemoryKey::Profile(key.clone()))
        {
            return Ok(Some((profile, true)));
        }
        let path = self.profile_path(key);
        let Some(bytes) = self.read_entry(&path)? else { return Ok(None) };
        let Some(profile) = decode_profile(&bytes, key) else { return Ok(None) };
        self.touch_entry(&path);
        let profile = Arc::new(profile);
        self.memory.insert(
            MemoryKey::Profile(key.clone()),
            MemoryArtifact::Profile(profile.clone()),
            bytes.len() as u64,
            &self.stats.memory_evictions,
        );
        Ok(Some((profile, false)))
    }

    /// Looks up the profile stored under `key`, in either tier.
    ///
    /// Returns `Ok(None)` on a miss — including stale-version or corrupt
    /// disk entries, which a later [`store`](Self::store) will overwrite.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ProfileCache`] for I/O failures other than the entry
    /// not existing.
    pub fn load(&self, key: &ProfileCacheKey) -> Result<Option<Arc<ApplicationProfile>>, Error> {
        Ok(self.lookup_profile(key)?.map(|(profile, _)| profile))
    }

    /// Persists `profile` under `key` in both tiers, creating the cache
    /// directory if needed.  Unlike the `load_or_*` paths, the raw store
    /// API does not degrade: the caller asked for persistence and learns
    /// when it did not happen.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ProfileCache`] on I/O failure (after bounded
    /// transient retries).
    pub fn store(&self, key: &ProfileCacheKey, profile: &ApplicationProfile) -> Result<(), Error> {
        let profile = Arc::new(profile.clone());
        let bytes = encode_profile(key, &profile);
        self.write_entry(&self.profile_path(key), &bytes)?;
        self.memory.insert(
            MemoryKey::Profile(key.clone()),
            MemoryArtifact::Profile(profile),
            bytes.len() as u64,
            &self.stats.memory_evictions,
        );
        Ok(())
    }

    /// [`lookup_profile`](Self::lookup_profile) on the degrade-to-recompute
    /// paths: a persistent read failure is demoted to a miss (the profile
    /// will be recomputed) and recorded, instead of failing the pipeline.
    fn lookup_profile_degraded(
        &self,
        key: &ProfileCacheKey,
    ) -> Option<(Arc<ApplicationProfile>, bool)> {
        match self.lookup_profile(key) {
            Ok(found) => found,
            Err(_) => {
                bump(&self.stats.degraded_loads);
                None
            }
        }
    }

    /// [`load`](Self::load) with hit/miss accounting — the sweep's logical
    /// profile lookup (the sweep stores the computed profile itself, because
    /// a fused cold pass produces it together with the warmup state).
    /// Degrades I/O failures to misses; the `Result` carries only future
    /// error sources.
    pub(crate) fn probe_profile(
        &self,
        key: &ProfileCacheKey,
    ) -> Result<Option<Arc<ApplicationProfile>>, Error> {
        match self.lookup_profile_degraded(key) {
            Some((profile, true)) => {
                bump(&self.stats.profile_memory_hits);
                Ok(Some(profile))
            }
            Some((profile, false)) => {
                bump(&self.stats.profile_hits);
                Ok(Some(profile))
            }
            None => {
                bump(&self.stats.profile_misses);
                Ok(None)
            }
        }
    }

    /// Write-through store of an already-shared profile (no deep copy).
    /// Disk failures degrade (see [`write_entry_degraded`]
    /// (Self::write_entry_degraded)); the memory tier is populated either
    /// way.
    pub(crate) fn store_profile_arc(
        &self,
        key: &ProfileCacheKey,
        profile: &Arc<ApplicationProfile>,
    ) -> Result<(), Error> {
        let bytes = encode_profile(key, profile);
        self.write_entry_degraded(&self.profile_path(key), &bytes);
        self.memory.insert(
            MemoryKey::Profile(key.clone()),
            MemoryArtifact::Profile(profile.clone()),
            bytes.len() as u64,
            &self.stats.memory_evictions,
        );
        Ok(())
    }

    /// Tiered selection lookup; see [`lookup_profile`](Self::lookup_profile).
    fn lookup_selection(
        &self,
        key: &SelectionCacheKey,
    ) -> Result<Option<(Arc<BarrierPointSelection>, bool)>, Error> {
        if let Some(MemoryArtifact::Selection(selection)) =
            self.memory.get(&MemoryKey::Selection(key.clone()))
        {
            return Ok(Some((selection, true)));
        }
        let path = self.selection_path(key);
        let Some(bytes) = self.read_entry(&path)? else { return Ok(None) };
        let Some(selection) = decode_selection(&bytes, key) else { return Ok(None) };
        self.touch_entry(&path);
        let selection = Arc::new(selection);
        self.memory.insert(
            MemoryKey::Selection(key.clone()),
            MemoryArtifact::Selection(selection.clone()),
            bytes.len() as u64,
            &self.stats.memory_evictions,
        );
        Ok(Some((selection, false)))
    }

    /// Looks up the selection stored under `key`, in either tier; `Ok(None)`
    /// on any miss.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ProfileCache`] for I/O failures other than the entry
    /// not existing.
    pub fn load_selection(
        &self,
        key: &SelectionCacheKey,
    ) -> Result<Option<Arc<BarrierPointSelection>>, Error> {
        Ok(self.lookup_selection(key)?.map(|(selection, _)| selection))
    }

    /// Persists `selection` under `key` in both tiers.  Does not degrade;
    /// see [`store`](Self::store).
    ///
    /// # Errors
    ///
    /// Returns [`Error::ProfileCache`] on I/O failure (after bounded
    /// transient retries).
    pub fn store_selection(
        &self,
        key: &SelectionCacheKey,
        selection: &BarrierPointSelection,
    ) -> Result<(), Error> {
        let selection = Arc::new(selection.clone());
        let bytes = encode_selection(key, &selection);
        self.write_entry(&self.selection_path(key), &bytes)?;
        self.memory.insert(
            MemoryKey::Selection(key.clone()),
            MemoryArtifact::Selection(selection),
            bytes.len() as u64,
            &self.stats.memory_evictions,
        );
        Ok(())
    }

    /// [`lookup_selection`](Self::lookup_selection) on the
    /// degrade-to-recompute paths; see
    /// [`lookup_profile_degraded`](Self::lookup_profile_degraded).
    fn lookup_selection_degraded(
        &self,
        key: &SelectionCacheKey,
    ) -> Option<(Arc<BarrierPointSelection>, bool)> {
        match self.lookup_selection(key) {
            Ok(found) => found,
            Err(_) => {
                bump(&self.stats.degraded_loads);
                None
            }
        }
    }

    /// [`load_selection`](Self::load_selection) with hit/miss accounting —
    /// the sweep's logical selection lookup.  The selection key is derivable
    /// without the profile, so a sweep whose selection is cached never
    /// touches (or recomputes) the profile at all.  Degrades I/O failures
    /// to misses.
    pub(crate) fn probe_selection(
        &self,
        key: &SelectionCacheKey,
    ) -> Result<Option<Arc<BarrierPointSelection>>, Error> {
        match self.lookup_selection_degraded(key) {
            Some((selection, true)) => {
                bump(&self.stats.selection_memory_hits);
                Ok(Some(selection))
            }
            Some((selection, false)) => {
                bump(&self.stats.selection_hits);
                Ok(Some(selection))
            }
            None => {
                bump(&self.stats.selection_misses);
                Ok(None)
            }
        }
    }

    /// Write-through store of an already-shared selection (no deep copy).
    /// Disk failures degrade; the memory tier is populated either way.
    pub(crate) fn store_selection_arc(
        &self,
        key: &SelectionCacheKey,
        selection: &Arc<BarrierPointSelection>,
    ) -> Result<(), Error> {
        let bytes = encode_selection(key, selection);
        self.write_entry_degraded(&self.selection_path(key), &bytes);
        self.memory.insert(
            MemoryKey::Selection(key.clone()),
            MemoryArtifact::Selection(selection.clone()),
            bytes.len() as u64,
            &self.stats.memory_evictions,
        );
        Ok(())
    }

    /// Returns the cached profile for `workload`, profiling (under `policy`)
    /// and populating the cache on a miss.  The boolean is `true` when the
    /// profile came from the cache.
    ///
    /// Cache I/O failures degrade to recomputation (recorded in
    /// [`CacheStats::degraded_loads`]/[`CacheStats::degraded_stores`])
    /// rather than failing the pipeline; use the raw
    /// [`load`](Self::load)/[`store`](Self::store) API to observe them.
    ///
    /// # Errors
    ///
    /// Propagates profiling errors ([`Error::EmptyWorkload`]).
    pub fn load_or_profile<W: Workload + ?Sized>(
        &self,
        workload: &W,
        policy: &ExecutionPolicy,
    ) -> Result<(Arc<ApplicationProfile>, bool), Error> {
        let key = ProfileCacheKey::for_workload(workload);
        match self.lookup_profile_degraded(&key) {
            Some((profile, true)) => {
                bump(&self.stats.profile_memory_hits);
                Ok((profile, true))
            }
            Some((profile, false)) => {
                bump(&self.stats.profile_hits);
                Ok((profile, true))
            }
            None => {
                bump(&self.stats.profile_misses);
                let profile = Arc::new(profile_application_with(workload, policy)?);
                self.store_profile_arc(&key, &profile)?;
                Ok((profile, false))
            }
        }
    }

    /// Drops the profile stored under `key` from **both** tiers, so the
    /// next lookup recomputes (or re-walks) it.  Returns whether any tier
    /// held the entry.  A disk removal failure other than the entry not
    /// existing is swallowed — invalidation is best-effort, exactly like
    /// eviction — but the memory tier drop always happens, so in-process
    /// lookups can never resurrect the invalidated artifact.
    ///
    /// The segment-parallelism bench uses this to force a re-profile that
    /// exercises the checkpoint path; the checkpoints themselves are keyed
    /// separately and survive.
    pub fn invalidate_profile(&self, key: &ProfileCacheKey) -> bool {
        let in_memory = self.memory.remove(&MemoryKey::Profile(key.clone()));
        let on_disk = self.storage.remove_file(&self.profile_path(key)).is_ok();
        in_memory || on_disk
    }

    /// Tiered checkpoint lookup; see [`lookup_profile`](Self::lookup_profile).
    fn lookup_checkpoint(
        &self,
        key: &CheckpointCacheKey,
    ) -> Result<Option<(Arc<WorkloadCheckpoints>, bool)>, Error> {
        if let Some(MemoryArtifact::Checkpoint(checkpoints)) =
            self.memory.get(&MemoryKey::Checkpoint(key.clone()))
        {
            return Ok(Some((checkpoints, true)));
        }
        let path = self.checkpoint_path(key);
        let Some(bytes) = self.read_entry(&path)? else { return Ok(None) };
        let Some(checkpoints) = decode_checkpoint(&bytes, key) else { return Ok(None) };
        self.touch_entry(&path);
        let checkpoints = Arc::new(checkpoints);
        self.memory.insert(
            MemoryKey::Checkpoint(key.clone()),
            MemoryArtifact::Checkpoint(checkpoints.clone()),
            bytes.len() as u64,
            &self.stats.memory_evictions,
        );
        Ok(Some((checkpoints, false)))
    }

    /// Looks up the region-segment checkpoints stored under `key`, in
    /// either tier; `Ok(None)` on any miss (stale version, corrupt payload,
    /// wrong key).
    ///
    /// # Errors
    ///
    /// Returns [`Error::ProfileCache`] for I/O failures other than the entry
    /// not existing.
    pub fn load_checkpoint(
        &self,
        key: &CheckpointCacheKey,
    ) -> Result<Option<Arc<WorkloadCheckpoints>>, Error> {
        Ok(self.lookup_checkpoint(key)?.map(|(checkpoints, _)| checkpoints))
    }

    /// Persists `checkpoints` under `key` in both tiers.  Does not degrade;
    /// see [`store`](Self::store).
    ///
    /// # Errors
    ///
    /// Returns [`Error::ProfileCache`] on I/O failure (after bounded
    /// transient retries).
    pub fn store_checkpoint(
        &self,
        key: &CheckpointCacheKey,
        checkpoints: &WorkloadCheckpoints,
    ) -> Result<(), Error> {
        let checkpoints = Arc::new(checkpoints.clone());
        let bytes = encode_checkpoint(key, &checkpoints);
        self.write_entry(&self.checkpoint_path(key), &bytes)?;
        self.memory.insert(
            MemoryKey::Checkpoint(key.clone()),
            MemoryArtifact::Checkpoint(checkpoints),
            bytes.len() as u64,
            &self.stats.memory_evictions,
        );
        Ok(())
    }

    /// [`lookup_checkpoint`](Self::lookup_checkpoint) on the
    /// degrade-to-recompute paths; see
    /// [`lookup_profile_degraded`](Self::lookup_profile_degraded).
    fn lookup_checkpoint_degraded(
        &self,
        key: &CheckpointCacheKey,
    ) -> Option<(Arc<WorkloadCheckpoints>, bool)> {
        match self.lookup_checkpoint(key) {
            Ok(found) => found,
            Err(_) => {
                bump(&self.stats.degraded_loads);
                None
            }
        }
    }

    /// [`load_checkpoint`](Self::load_checkpoint) with hit/miss accounting
    /// — the sweep's logical checkpoint lookup on a profile or warmup
    /// re-walk.  Degrades I/O failures to misses: checkpoints are purely an
    /// accelerator, a miss only costs the sequential walk.
    pub(crate) fn probe_checkpoint(
        &self,
        key: &CheckpointCacheKey,
    ) -> Result<Option<Arc<WorkloadCheckpoints>>, Error> {
        match self.lookup_checkpoint_degraded(key) {
            Some((checkpoints, true)) => {
                bump(&self.stats.checkpoint_memory_hits);
                Ok(Some(checkpoints))
            }
            Some((checkpoints, false)) => {
                bump(&self.stats.checkpoint_hits);
                Ok(Some(checkpoints))
            }
            None => {
                bump(&self.stats.checkpoint_misses);
                Ok(None)
            }
        }
    }

    /// Write-through store of already-shared checkpoints (no deep copy).
    /// Disk failures degrade; the memory tier is populated either way.
    pub(crate) fn store_checkpoint_arc(
        &self,
        key: &CheckpointCacheKey,
        checkpoints: &Arc<WorkloadCheckpoints>,
    ) -> Result<(), Error> {
        let bytes = encode_checkpoint(key, checkpoints);
        self.write_entry_degraded(&self.checkpoint_path(key), &bytes);
        self.memory.insert(
            MemoryKey::Checkpoint(key.clone()),
            MemoryArtifact::Checkpoint(checkpoints.clone()),
            bytes.len() as u64,
            &self.stats.memory_evictions,
        );
        Ok(())
    }

    /// Tiered simulated-leg lookup; see
    /// [`lookup_profile`](Self::lookup_profile).
    fn lookup_simulated(
        &self,
        key: &SimulatedCacheKey,
    ) -> Result<Option<(Arc<Simulated>, bool)>, Error> {
        if let Some(MemoryArtifact::Simulated(simulated)) =
            self.memory.get(&MemoryKey::Simulated(key.clone()))
        {
            return Ok(Some((simulated, true)));
        }
        let path = self.simulated_path(key);
        let Some(bytes) = self.read_entry(&path)? else { return Ok(None) };
        let Some(simulated) = decode_simulated(&bytes, key) else { return Ok(None) };
        self.touch_entry(&path);
        let simulated = Arc::new(simulated);
        self.memory.insert(
            MemoryKey::Simulated(key.clone()),
            MemoryArtifact::Simulated(simulated.clone()),
            bytes.len() as u64,
            &self.stats.memory_evictions,
        );
        Ok(Some((simulated, false)))
    }

    /// Looks up the simulated leg stored under `key`, in either tier;
    /// `Ok(None)` on any miss (stale version, corrupt payload, wrong key).
    ///
    /// # Errors
    ///
    /// Returns [`Error::ProfileCache`] for I/O failures other than the entry
    /// not existing.
    pub fn load_simulated(&self, key: &SimulatedCacheKey) -> Result<Option<Arc<Simulated>>, Error> {
        Ok(self.lookup_simulated(key)?.map(|(simulated, _)| simulated))
    }

    /// Persists `simulated` under `key` in both tiers.  Does not degrade;
    /// see [`store`](Self::store).
    ///
    /// # Errors
    ///
    /// Returns [`Error::ProfileCache`] on I/O failure (after bounded
    /// transient retries).
    pub fn store_simulated(
        &self,
        key: &SimulatedCacheKey,
        simulated: &Simulated,
    ) -> Result<(), Error> {
        let simulated = Arc::new(simulated.clone());
        let bytes = encode_simulated(key, &simulated);
        self.write_entry(&self.simulated_path(key), &bytes)?;
        self.memory.insert(
            MemoryKey::Simulated(key.clone()),
            MemoryArtifact::Simulated(simulated),
            bytes.len() as u64,
            &self.stats.memory_evictions,
        );
        Ok(())
    }

    /// Write-through store of an already-shared simulated leg (no deep
    /// copy).  Disk failures degrade; the memory tier is populated either
    /// way.
    pub(crate) fn store_simulated_arc(
        &self,
        key: &SimulatedCacheKey,
        simulated: &Arc<Simulated>,
    ) -> Result<(), Error> {
        let bytes = encode_simulated(key, simulated);
        self.write_entry_degraded(&self.simulated_path(key), &bytes);
        self.memory.insert(
            MemoryKey::Simulated(key.clone()),
            MemoryArtifact::Simulated(simulated.clone()),
            bytes.len() as u64,
            &self.stats.memory_evictions,
        );
        Ok(())
    }

    /// [`lookup_simulated`](Self::lookup_simulated) on the
    /// degrade-to-recompute paths; see
    /// [`lookup_profile_degraded`](Self::lookup_profile_degraded).
    fn lookup_simulated_degraded(&self, key: &SimulatedCacheKey) -> Option<(Arc<Simulated>, bool)> {
        match self.lookup_simulated(key) {
            Ok(found) => found,
            Err(_) => {
                bump(&self.stats.degraded_loads);
                None
            }
        }
    }

    /// [`load_simulated`](Self::load_simulated) with per-tier hit/miss
    /// accounting: every *logical* simulated-leg lookup goes through here
    /// exactly once (the sweep probes legs up front so it can skip the
    /// warmup collection of fully cached legs; the staged API probes through
    /// [`load_or_simulate`](Self::load_or_simulate)).  Degrades I/O
    /// failures to misses.
    pub(crate) fn probe_simulated(
        &self,
        key: &SimulatedCacheKey,
    ) -> Result<Option<Arc<Simulated>>, Error> {
        match self.lookup_simulated_degraded(key) {
            Some((simulated, true)) => {
                bump(&self.stats.simulated_memory_hits);
                Ok(Some(simulated))
            }
            Some((simulated, false)) => {
                bump(&self.stats.simulated_hits);
                Ok(Some(simulated))
            }
            None => {
                bump(&self.stats.simulated_misses);
                Ok(None)
            }
        }
    }

    /// Returns the cached simulated leg under `key`, running `simulate` and
    /// populating both tiers on a miss.  The boolean is `true` when the leg
    /// came from the cache — the detailed simulation (and its warmup
    /// collection) was skipped entirely.  Cache I/O failures degrade to
    /// recomputation; see [`load_or_profile`](Self::load_or_profile).
    ///
    /// # Errors
    ///
    /// Propagates `simulate`'s error.
    pub fn load_or_simulate<F>(
        &self,
        key: &SimulatedCacheKey,
        simulate: F,
    ) -> Result<(Arc<Simulated>, bool), Error>
    where
        F: FnOnce() -> Result<Arc<Simulated>, Error>,
    {
        if let Some(simulated) = self.probe_simulated(key)? {
            return Ok((simulated, true));
        }
        let simulated = simulate()?;
        self.store_simulated_arc(key, &simulated)?;
        Ok((simulated, false))
    }

    /// Returns the cached barrierpoint selection of `profile` (profiled from
    /// `workload`) under `(signature_config, strategy)`, running the
    /// strategy and populating the cache on a miss.  The boolean is `true`
    /// when the selection came from the cache — the selection strategy was
    /// skipped entirely.  Cache I/O failures degrade to recomputation; see
    /// [`load_or_profile`](Self::load_or_profile).
    ///
    /// # Errors
    ///
    /// Propagates selection errors ([`Error::EmptyWorkload`]).
    pub fn load_or_select<W: Workload + ?Sized>(
        &self,
        profile: &ApplicationProfile,
        workload: &W,
        signature_config: &SignatureConfig,
        strategy: &dyn SelectionStrategy,
    ) -> Result<(Arc<BarrierPointSelection>, bool), Error> {
        let key = SelectionCacheKey::for_workload(workload, signature_config, strategy);
        match self.lookup_selection_degraded(&key) {
            Some((selection, true)) => {
                bump(&self.stats.selection_memory_hits);
                Ok((selection, true))
            }
            Some((selection, false)) => {
                bump(&self.stats.selection_hits);
                Ok((selection, true))
            }
            None => {
                bump(&self.stats.selection_misses);
                let selection =
                    Arc::new(select_barrierpoints_with(profile, signature_config, strategy)?);
                self.store_selection_arc(&key, &selection)?;
                Ok((selection, false))
            }
        }
    }
}

impl Drop for ArtifactCache {
    /// The last handle over a directory persists the lifetime statistics.
    /// Clones share `stats`, so any earlier drop is a no-op and the flush
    /// happens exactly once per shared-counter group.
    fn drop(&mut self) {
        if Arc::strong_count(&self.stats) == 1 {
            self.flush();
        }
    }
}

/// The held advisory lock: releases (deletes) the `.lock` file on drop.
/// Release is best-effort — an undeletable lock file is exactly the crashed
/// holder case, which the staleness takeover already covers.
struct DirLock<'a> {
    cache: &'a ArtifactCache,
}

impl Drop for DirLock<'_> {
    fn drop(&mut self) {
        let _ = self.cache.storage.remove_file(&self.cache.root.join(LOCK_FILE));
    }
}

/// Extracts the `ts-ms <millis>` field from an advisory lock body.  Returns
/// `None` for torn, empty, or foreign-format bodies (the caller falls back
/// to the file mtime).
fn parse_lock_ts_ms(bytes: &[u8]) -> Option<u64> {
    let text = std::str::from_utf8(bytes).ok()?;
    let mut tokens = text.split_whitespace();
    while let Some(token) = tokens.next() {
        if token == "ts-ms" {
            return tokens.next()?.parse().ok();
        }
    }
    None
}

/// Seals an encoded entry with a trailing FNV-1a checksum of everything
/// before it.  Magic, version, and key echo catch truncation and foreign
/// files; the checksum is what catches *payload* damage — a bit flip in the
/// metrics region of an otherwise well-formed entry would decode cleanly
/// and be served as truth without it.  FNV-1a because it is fixed forever
/// (see [`FingerprintHasher`]); this is an integrity check against storage
/// rot, not an adversarial MAC.
fn seal(mut bytes: Vec<u8>) -> Vec<u8> {
    let mut hasher = FingerprintHasher::new();
    hasher.write_bytes(&bytes);
    bytes.extend_from_slice(&hasher.finish().to_le_bytes());
    bytes
}

/// Verifies and strips [`seal`]'s trailing checksum; `None` on any mismatch
/// (including entries too short to carry one).
fn verify_seal(bytes: &[u8]) -> Option<&[u8]> {
    let (payload, tail) = bytes.split_at(bytes.len().checked_sub(8)?);
    let mut hasher = FingerprintHasher::new();
    hasher.write_bytes(payload);
    (hasher.finish().to_le_bytes() == tail).then_some(payload)
}

/// Encodes the persisted-statistics file: magic, version, then the counters
/// in [`CacheStats::as_array`] order, sealed with a checksum.
fn encode_state(stats: &CacheStats) -> Vec<u8> {
    let mut out = serde::Serializer::new();
    out.write_bytes(STATE_MAGIC);
    out.write_u32(STATE_VERSION);
    for value in stats.as_array() {
        out.write_u64(value);
    }
    seal(out.into_bytes())
}

/// Decodes a persisted-statistics file.  Anything unexpected — wrong magic,
/// other version, torn or trailing bytes — returns `None`, which the caller
/// treats as a zero base: statistics reset, they never fail the cache.
fn decode_state(bytes: &[u8]) -> Option<CacheStats> {
    let mut de = serde::Deserializer::new(verify_seal(bytes)?);
    if de.read_bytes(STATE_MAGIC.len()).ok()? != STATE_MAGIC {
        return None;
    }
    if de.read_u32().ok()? != STATE_VERSION {
        return None;
    }
    let mut values = [0u64; STATS_FIELDS];
    for value in &mut values {
        *value = de.read_u64().ok()?;
    }
    if de.remaining() != 0 {
        return None;
    }
    Some(CacheStats::from_array(values))
}

fn encode_profile(key: &ProfileCacheKey, profile: &ApplicationProfile) -> Vec<u8> {
    let mut out = serde::Serializer::new();
    out.write_bytes(PROFILE_MAGIC);
    out.write_u32(FORMAT_VERSION);
    out.write_str(&key.workload_name);
    out.write_u64(key.threads as u64);
    out.write_u64(key.fingerprint);
    serde::Serialize::serialize(profile, &mut out);
    seal(out.into_bytes())
}

/// Decodes a profile entry, returning `None` for anything that does not match
/// `key` exactly (wrong magic/version/key, torn or trailing bytes).
fn decode_profile(bytes: &[u8], key: &ProfileCacheKey) -> Option<ApplicationProfile> {
    let mut de = serde::Deserializer::new(verify_seal(bytes)?);
    if de.read_bytes(PROFILE_MAGIC.len()).ok()? != PROFILE_MAGIC {
        return None;
    }
    if de.read_u32().ok()? != FORMAT_VERSION {
        return None;
    }
    if de.read_string().ok()? != key.workload_name {
        return None;
    }
    if de.read_u64().ok()? != key.threads as u64 {
        return None;
    }
    if de.read_u64().ok()? != key.fingerprint {
        return None;
    }
    let profile: ApplicationProfile = serde::Deserialize::deserialize(&mut de).ok()?;
    if de.remaining() != 0 {
        return None;
    }
    Some(profile)
}

fn encode_selection(key: &SelectionCacheKey, selection: &BarrierPointSelection) -> Vec<u8> {
    let mut out = serde::Serializer::new();
    out.write_bytes(SELECTION_MAGIC);
    out.write_u32(FORMAT_VERSION);
    out.write_str(&key.workload_name);
    out.write_u64(key.threads as u64);
    out.write_u64(key.profile_fingerprint);
    out.write_u64(key.config_fingerprint);
    serde::Serialize::serialize(selection, &mut out);
    seal(out.into_bytes())
}

/// Decodes a selection entry; `None` on any mismatch, as for profiles.
fn decode_selection(bytes: &[u8], key: &SelectionCacheKey) -> Option<BarrierPointSelection> {
    let mut de = serde::Deserializer::new(verify_seal(bytes)?);
    if de.read_bytes(SELECTION_MAGIC.len()).ok()? != SELECTION_MAGIC {
        return None;
    }
    if de.read_u32().ok()? != FORMAT_VERSION {
        return None;
    }
    if de.read_string().ok()? != key.workload_name {
        return None;
    }
    if de.read_u64().ok()? != key.threads as u64 {
        return None;
    }
    if de.read_u64().ok()? != key.profile_fingerprint {
        return None;
    }
    if de.read_u64().ok()? != key.config_fingerprint {
        return None;
    }
    let selection: BarrierPointSelection = serde::Deserialize::deserialize(&mut de).ok()?;
    if de.remaining() != 0 {
        return None;
    }
    Some(selection)
}

fn encode_simulated(key: &SimulatedCacheKey, simulated: &Simulated) -> Vec<u8> {
    let mut out = serde::Serializer::new();
    out.write_bytes(SIMULATED_MAGIC);
    out.write_u32(FORMAT_VERSION);
    out.write_str(&key.workload_name);
    out.write_u64(key.threads as u64);
    out.write_u64(key.workload_fingerprint);
    out.write_u64(key.selection_fingerprint);
    out.write_u64(key.config_fingerprint);
    serde::Serialize::serialize(simulated, &mut out);
    seal(out.into_bytes())
}

/// Decodes a simulated-leg entry; `None` on any mismatch, as for profiles.
fn decode_simulated(bytes: &[u8], key: &SimulatedCacheKey) -> Option<Simulated> {
    let mut de = serde::Deserializer::new(verify_seal(bytes)?);
    if de.read_bytes(SIMULATED_MAGIC.len()).ok()? != SIMULATED_MAGIC {
        return None;
    }
    if de.read_u32().ok()? != FORMAT_VERSION {
        return None;
    }
    if de.read_string().ok()? != key.workload_name {
        return None;
    }
    if de.read_u64().ok()? != key.threads as u64 {
        return None;
    }
    if de.read_u64().ok()? != key.workload_fingerprint {
        return None;
    }
    if de.read_u64().ok()? != key.selection_fingerprint {
        return None;
    }
    if de.read_u64().ok()? != key.config_fingerprint {
        return None;
    }
    let simulated: Simulated = serde::Deserialize::deserialize(&mut de).ok()?;
    if de.remaining() != 0 {
        return None;
    }
    Some(simulated)
}

fn encode_checkpoint(key: &CheckpointCacheKey, checkpoints: &WorkloadCheckpoints) -> Vec<u8> {
    let mut out = serde::Serializer::new();
    out.write_bytes(CHECKPOINT_MAGIC);
    out.write_u32(FORMAT_VERSION);
    out.write_str(&key.workload_name);
    out.write_u64(key.threads as u64);
    out.write_u64(key.fingerprint);
    serde::Serialize::serialize(checkpoints, &mut out);
    seal(out.into_bytes())
}

/// Decodes a checkpoint entry; `None` on any mismatch, as for profiles.
fn decode_checkpoint(bytes: &[u8], key: &CheckpointCacheKey) -> Option<WorkloadCheckpoints> {
    let mut de = serde::Deserializer::new(verify_seal(bytes)?);
    if de.read_bytes(CHECKPOINT_MAGIC.len()).ok()? != CHECKPOINT_MAGIC {
        return None;
    }
    if de.read_u32().ok()? != FORMAT_VERSION {
        return None;
    }
    if de.read_string().ok()? != key.workload_name {
        return None;
    }
    if de.read_u64().ok()? != key.threads as u64 {
        return None;
    }
    if de.read_u64().ok()? != key.fingerprint {
        return None;
    }
    let checkpoints: WorkloadCheckpoints = serde::Deserialize::deserialize(&mut de).ok()?;
    if de.remaining() != 0 {
        return None;
    }
    Some(checkpoints)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::profile_application;
    use crate::select::select_barrierpoints;
    use crate::storage::{Fault, FaultFs, FaultOp};
    use bp_clustering::{SimPointConfig, SimPointStrategy};
    // bp-lint: allow(std-fs) — tests exercise the real filesystem directly.
    use std::fs;
    use std::time::Duration;

    use bp_workload::{Benchmark, WorkloadConfig};

    fn temp_cache(tag: &str) -> ArtifactCache {
        let dir = std::env::temp_dir()
            .join(format!("bp-artifact-cache-test-{tag}-{}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        ArtifactCache::new(dir)
    }

    /// A fresh handle over the same directory: cold memory tier, warm disk
    /// tier — the "new process" view of the cache.
    fn reopen(cache: &ArtifactCache) -> ArtifactCache {
        ArtifactCache::new(cache.root())
    }

    fn workload(scale: f64) -> impl Workload {
        Benchmark::NpbIs.build(&WorkloadConfig::new(2).with_scale(scale))
    }

    /// Golden pin for the strategy seam: selections and cache keys produced
    /// by the default SimPoint strategy must stay byte-identical to the
    /// pre-seam `(SignatureConfig, SimPointConfig)` key derivation, so warm
    /// caches built before the refactor keep serving hits afterwards.  All
    /// constants were captured on the pre-seam implementation.
    /// One golden case: benchmark, threads, config, profile fingerprint,
    /// config fingerprint, selection fingerprint, serialized length,
    /// barrierpoint count.
    type GoldenCase = (Benchmark, usize, SimPointConfig, u64, u64, u64, usize, usize);

    #[test]
    fn default_strategy_fingerprints_match_pre_seam_golden_values() {
        let cases: [GoldenCase; 4] = [
            (
                Benchmark::NpbIs,
                2,
                SimPointConfig::paper(),
                0xd6c3_71d7_a206_94b0,
                0x8540_85e3_3a45_6c6e,
                0xbb96_3799_b9cb_c17d,
                710,
                11,
            ),
            (
                Benchmark::NpbIs,
                2,
                SimPointConfig::paper().with_max_k(3),
                0xd6c3_71d7_a206_94b0,
                0xb578_ef22_2964_1d15,
                0x4574_02bd_5926_0ae5,
                390,
                3,
            ),
            (
                Benchmark::NpbCg,
                4,
                SimPointConfig::paper(),
                0xd8b3_96d5_7d3b_6d2b,
                0x8540_85e3_3a45_6c6e,
                0x392c_ef1e_d5ee_b461,
                1350,
                13,
            ),
            (
                Benchmark::NpbCg,
                4,
                SimPointConfig::paper().with_max_k(3),
                0xd8b3_96d5_7d3b_6d2b,
                0xb578_ef22_2964_1d15,
                0x511e_c982_bc5a_61a9,
                950,
                3,
            ),
        ];
        for (bench, threads, sp, profile_fp, config_fp, selection_fp, bytes, nbp) in cases {
            let w = bench.build(&WorkloadConfig::new(threads).with_scale(0.02));
            let sig = SignatureConfig::combined();
            let key = SelectionCacheKey::for_workload(&w, &sig, &SimPointStrategy::new(sp));
            assert_eq!(key.profile_fingerprint(), profile_fp, "{threads}t profile fingerprint");
            assert_eq!(key.config_fingerprint(), config_fp, "{threads}t config fingerprint");

            let profile = profile_application(&w).unwrap();
            let selection = select_barrierpoints(&profile, &sig, &sp).unwrap();
            assert_eq!(selection.num_barrierpoints(), nbp, "{threads}t barrierpoint count");
            assert_eq!(serde::to_vec(&selection).len(), bytes, "{threads}t selection encoding");
            assert_eq!(selection.fingerprint(), selection_fp, "{threads}t selection fingerprint");

            let sim_key = SimulatedCacheKey::new(
                &w,
                &selection,
                &SimConfig::scaled(threads),
                WarmupKind::MruReplay,
            );
            assert_eq!(sim_key.selection_fingerprint(), selection_fp, "{threads}t sim key");
        }
        assert_eq!(
            sim_config_fingerprint(&SimConfig::scaled(2), WarmupKind::MruReplay),
            0xc0a9_50fc_b523_25b5,
        );
        assert_eq!(
            sim_config_fingerprint(&SimConfig::scaled(4), WarmupKind::MruReplay),
            0x33c5_f23c_b151_f327,
        );
    }

    #[test]
    fn miss_then_hit_round_trips_profile() {
        let cache = temp_cache("roundtrip");
        let w = workload(0.02);
        let (first, cached) = cache.load_or_profile(&w, &ExecutionPolicy::Serial).unwrap();
        assert!(!cached);
        // Same handle: the store wrote through to the memory tier.
        let (second, cached) = cache.load_or_profile(&w, &ExecutionPolicy::Serial).unwrap();
        assert!(cached);
        assert_eq!(first, second);
        assert_eq!(cache.stats().profile_memory_hits, 1);
        assert_eq!(cache.stats().profile_hits, 0);
        assert_eq!(cache.stats().profile_misses, 1);
        // A reopened handle decodes the same artifact from disk.
        let reopened = reopen(&cache);
        let (third, cached) = reopened.load_or_profile(&w, &ExecutionPolicy::Serial).unwrap();
        assert!(cached);
        assert_eq!(first, third);
        assert_eq!(reopened.stats().profile_hits, 1);
        assert_eq!(reopened.stats().profile_memory_hits, 0);
        fs::remove_dir_all(cache.root()).ok();
    }

    #[test]
    fn different_workload_configs_do_not_alias() {
        let cache = temp_cache("alias");
        let small = workload(0.02);
        let large = workload(0.05);
        assert_ne!(small.profile_fingerprint(), large.profile_fingerprint());
        let (p_small, _) = cache.load_or_profile(&small, &ExecutionPolicy::Serial).unwrap();
        let (p_large, cached) = cache.load_or_profile(&large, &ExecutionPolicy::Serial).unwrap();
        assert!(!cached, "distinct configs must miss");
        assert_ne!(p_small, p_large);
        fs::remove_dir_all(cache.root()).ok();
    }

    #[test]
    fn corrupt_profile_entries_read_as_misses() {
        let cache = temp_cache("corrupt");
        let w = workload(0.02);
        let key = ProfileCacheKey::for_workload(&w);
        let (profile, _) = cache.load_or_profile(&w, &ExecutionPolicy::Serial).unwrap();

        // Truncate the entry on disk; a cold-memory handle must miss.
        let path = cache.profile_path(&key);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let reopened = reopen(&cache);
        assert_eq!(reopened.load(&key).unwrap(), None);

        // A re-store heals it.
        reopened.store(&key, &profile).unwrap();
        assert_eq!(reopen(&reopened).load(&key).unwrap().as_deref(), Some(&*profile));
        fs::remove_dir_all(cache.root()).ok();
    }

    #[test]
    fn stale_format_version_reads_as_miss() {
        let cache = temp_cache("version");
        let w = workload(0.02);
        let key = ProfileCacheKey::for_workload(&w);
        cache.load_or_profile(&w, &ExecutionPolicy::Serial).unwrap();

        let path = cache.profile_path(&key);
        let mut bytes = fs::read(&path).unwrap();
        bytes[4] = bytes[4].wrapping_add(1); // bump the stored version
        fs::write(&path, &bytes).unwrap();
        assert_eq!(reopen(&cache).load(&key).unwrap(), None);
        fs::remove_dir_all(cache.root()).ok();
    }

    #[test]
    fn key_file_names_are_sanitized() {
        let key = ProfileCacheKey {
            workload_name: "np/b is!".into(),
            threads: 4,
            fingerprint: 0xdead_beef,
        };
        let name = key.file_name();
        assert!(name.starts_with("np_b_is_-4t-"));
        assert!(name.ends_with(".bpprof"));
        assert!(!name.contains('/'));
    }

    #[test]
    fn selection_miss_then_hit_skips_clustering_and_accounts() {
        let cache = temp_cache("sel-roundtrip");
        let w = workload(0.02);
        let profile = profile_application(&w).unwrap();
        let sig = SignatureConfig::combined();
        let sp = SimPointStrategy::new(SimPointConfig::paper());

        let (first, cached) = cache.load_or_select(&profile, &w, &sig, &sp).unwrap();
        assert!(!cached);
        let (second, cached) = cache.load_or_select(&profile, &w, &sig, &sp).unwrap();
        assert!(cached);
        assert_eq!(first, second);
        let stats = cache.stats();
        assert_eq!(stats.selection_misses, 1);
        assert_eq!(stats.selection_memory_hits, 1, "same handle hits the memory tier");
        let reopened = reopen(&cache);
        let (third, cached) = reopened.load_or_select(&profile, &w, &sig, &sp).unwrap();
        assert!(cached);
        assert_eq!(first, third);
        assert_eq!(reopened.stats().selection_hits, 1, "cold memory falls back to disk");
        fs::remove_dir_all(cache.root()).ok();
    }

    #[test]
    fn changed_simpoint_config_produces_a_distinct_key_and_misses() {
        let cache = temp_cache("sel-config");
        let w = workload(0.02);
        let profile = profile_application(&w).unwrap();
        let sig = SignatureConfig::combined();
        let paper = SimPointStrategy::new(SimPointConfig::paper());
        let reseeded = SimPointStrategy::new(SimPointConfig::paper().with_seed(0xfeed));
        let small_k = SimPointStrategy::new(SimPointConfig::paper().with_max_k(3));

        let paper_key = SelectionCacheKey::for_workload(&w, &sig, &paper);
        for other in [&reseeded, &small_k] {
            let other_key = SelectionCacheKey::for_workload(&w, &sig, other);
            assert_ne!(paper_key, other_key);
            assert_ne!(paper_key.file_name(), other_key.file_name());
        }
        // And a changed signature config likewise.
        let bbv_key = SelectionCacheKey::for_workload(&w, &SignatureConfig::bbv_only(), &paper);
        assert_ne!(paper_key.config_fingerprint(), bbv_key.config_fingerprint());

        cache.load_or_select(&profile, &w, &sig, &paper).unwrap();
        let (_, cached) = cache.load_or_select(&profile, &w, &sig, &small_k).unwrap();
        assert!(!cached, "a changed SimPointConfig must miss");
        assert_eq!(cache.stats().selection_misses, 2);
        fs::remove_dir_all(cache.root()).ok();
    }

    #[test]
    fn corrupt_selection_entry_self_heals_as_a_miss() {
        let cache = temp_cache("sel-corrupt");
        let w = workload(0.02);
        let profile = profile_application(&w).unwrap();
        let sig = SignatureConfig::combined();
        let sp = SimPointStrategy::new(SimPointConfig::paper());
        let key = SelectionCacheKey::for_workload(&w, &sig, &sp);
        let (selection, _) = cache.load_or_select(&profile, &w, &sig, &sp).unwrap();

        // Corrupt the payload: flip a byte past the header.  A cold-memory
        // handle sees the corruption and must miss.
        let path = cache.selection_path(&key);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        bytes.push(0); // and leave trailing garbage
        fs::write(&path, &bytes).unwrap();
        let reopened = reopen(&cache);
        assert_eq!(reopened.load_selection(&key).unwrap(), None);

        // The next load_or_select re-clusters, restores, and heals the entry.
        let (healed, cached) = reopened.load_or_select(&profile, &w, &sig, &sp).unwrap();
        assert!(!cached);
        assert_eq!(healed, selection);
        assert_eq!(reopen(&reopened).load_selection(&key).unwrap(), Some(selection));
        fs::remove_dir_all(cache.root()).ok();
    }

    #[test]
    fn size_bound_evicts_least_recently_used_entries() {
        // Memory tier off: this test pins the *disk* tier's LRU behavior.
        let cache = temp_cache("evict").with_max_bytes(1).with_memory_max_bytes(0);
        let w = workload(0.02);
        let profile = profile_application(&w).unwrap();
        let profile_key = ProfileCacheKey::for_workload(&w);
        let sig = SignatureConfig::combined();
        let sp = SimPointConfig::paper();
        let selection_key = SelectionCacheKey::for_workload(&w, &sig, &SimPointStrategy::new(sp));

        // With a 1-byte budget, storing the selection after the profile must
        // evict the (older) profile but keep the entry just written.
        cache.store(&profile_key, &profile).unwrap();
        std::thread::sleep(Duration::from_millis(20)); // distinct mtimes
        let selection = select_barrierpoints(&profile, &sig, &sp).unwrap();
        cache.store_selection(&selection_key, &selection).unwrap();

        assert_eq!(cache.load(&profile_key).unwrap(), None, "older entry evicted");
        assert_eq!(cache.load_selection(&selection_key).unwrap().as_deref(), Some(&selection));
        assert_eq!(cache.stats().evictions, 1);
        fs::remove_dir_all(cache.root()).ok();
    }

    #[test]
    fn stale_orphaned_tmp_files_are_cleaned_up() {
        let cache = temp_cache("tmp-orphan").with_max_bytes(64 * 1024 * 1024);
        let w = workload(0.02);
        let profile = profile_application(&w).unwrap();
        let key = ProfileCacheKey::for_workload(&w);

        // Simulate a writer killed between write and rename, long ago.
        fs::create_dir_all(cache.root()).unwrap();
        let orphan = cache.root().join("npb-is-2t-0000000000000000.tmp-99999");
        fs::write(&orphan, b"torn").unwrap();
        let old = SystemTime::now() - Duration::from_secs(120);
        fs::OpenOptions::new().write(true).open(&orphan).unwrap().set_modified(old).unwrap();

        // A fresh tmp file (a concurrent writer) must be left alone.
        let live = cache.root().join("npb-is-2t-1111111111111111.tmp-88888");
        fs::write(&live, b"in-flight").unwrap();

        cache.store(&key, &profile).unwrap();
        assert!(!orphan.exists(), "stale orphan must be deleted by the store's scan");
        assert!(live.exists(), "recent tmp files must survive");
        assert_eq!(cache.stats().evictions, 0, "orphan cleanup is not an eviction");
        fs::remove_dir_all(cache.root()).ok();
    }

    #[test]
    fn generous_size_bound_keeps_everything() {
        let cache = temp_cache("no-evict").with_max_bytes(64 * 1024 * 1024);
        let w = workload(0.02);
        let (profile, _) = cache.load_or_profile(&w, &ExecutionPolicy::Serial).unwrap();
        let (_, _) = cache
            .load_or_select(
                &profile,
                &w,
                &SignatureConfig::combined(),
                &SimPointStrategy::new(SimPointConfig::paper()),
            )
            .unwrap();
        let (_, cached) = cache.load_or_profile(&w, &ExecutionPolicy::Serial).unwrap();
        assert!(cached);
        assert_eq!(cache.stats().evictions, 0);
        fs::remove_dir_all(cache.root()).ok();
    }

    #[test]
    fn simulated_miss_then_hit_skips_simulation_and_accounts() {
        let cache = temp_cache("sim-roundtrip");
        let w = workload(0.02);
        let selected = crate::BarrierPoint::new(&w).profile().unwrap().select().unwrap();
        let sim_config = SimConfig::scaled(2);
        let key =
            SimulatedCacheKey::new(&w, selected.selection(), &sim_config, WarmupKind::MruReplay);

        let (first, was_cached) =
            cache.load_or_simulate(&key, || selected.simulate(&sim_config)).unwrap();
        assert!(!was_cached);
        let (second, was_cached) =
            cache.load_or_simulate(&key, || panic!("a hit must not re-simulate")).unwrap();
        assert!(was_cached);
        assert_eq!(first, second);
        let stats = cache.stats();
        assert_eq!((stats.simulated_misses, stats.simulated_memory_hits), (1, 1));
        // A cold-memory handle serves the same leg from disk.
        let reopened = reopen(&cache);
        let (third, was_cached) =
            reopened.load_or_simulate(&key, || panic!("a disk hit must not re-simulate")).unwrap();
        assert!(was_cached);
        assert_eq!(first, third);
        assert_eq!(reopened.stats().simulated_hits, 1);
        fs::remove_dir_all(cache.root()).ok();
    }

    #[test]
    fn changed_sim_config_or_warmup_produces_a_distinct_simulated_key() {
        let w = workload(0.02);
        let selected = crate::BarrierPoint::new(&w).profile().unwrap().select().unwrap();
        let base = SimConfig::scaled(2);
        let mut fast = base;
        fast.core.frequency_ghz *= 1.5;

        let base_key =
            SimulatedCacheKey::new(&w, selected.selection(), &base, WarmupKind::MruReplay);
        let fast_key =
            SimulatedCacheKey::new(&w, selected.selection(), &fast, WarmupKind::MruReplay);
        let cold_key = SimulatedCacheKey::new(&w, selected.selection(), &base, WarmupKind::Cold);
        assert_ne!(base_key, fast_key, "a changed SimConfig must not alias");
        assert_ne!(base_key, cold_key, "a changed WarmupKind must not alias");
        assert_ne!(base_key.file_name(), fast_key.file_name());
        assert_ne!(base_key.file_name(), cold_key.file_name());

        // And on disk: a base-config entry never serves the others.
        let cache = temp_cache("sim-config");
        let (_, _) = cache.load_or_simulate(&base_key, || selected.simulate(&base)).unwrap();
        assert_eq!(cache.load_simulated(&fast_key).unwrap(), None);
        assert_eq!(cache.load_simulated(&cold_key).unwrap(), None);
        fs::remove_dir_all(cache.root()).ok();
    }

    #[test]
    fn corrupt_simulated_entry_self_heals_as_a_miss() {
        let cache = temp_cache("sim-corrupt");
        let w = workload(0.02);
        let selected = crate::BarrierPoint::new(&w).profile().unwrap().select().unwrap();
        let sim_config = SimConfig::scaled(2);
        let key =
            SimulatedCacheKey::new(&w, selected.selection(), &sim_config, WarmupKind::MruReplay);
        let (simulated, _) =
            cache.load_or_simulate(&key, || selected.simulate(&sim_config)).unwrap();

        // Corrupt the payload: flip a byte past the header and add garbage.
        // A cold-memory handle sees the corruption and must miss.
        let path = cache.simulated_path(&key);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        bytes.push(0);
        fs::write(&path, &bytes).unwrap();
        let reopened = reopen(&cache);
        assert_eq!(reopened.load_simulated(&key).unwrap(), None);

        // The next load_or_simulate re-simulates and heals the entry.
        let (healed, was_cached) =
            reopened.load_or_simulate(&key, || selected.simulate(&sim_config)).unwrap();
        assert!(!was_cached);
        assert_eq!(healed, simulated);
        assert_eq!(reopen(&reopened).load_simulated(&key).unwrap(), Some(simulated));
        fs::remove_dir_all(cache.root()).ok();
    }

    #[test]
    fn simulated_entries_participate_in_lru_eviction() {
        // Memory tier off: this test pins the *disk* tier's LRU behavior.
        let cache = temp_cache("sim-evict").with_max_bytes(1).with_memory_max_bytes(0);
        let w = workload(0.02);
        let selected = crate::BarrierPoint::new(&w).profile().unwrap().select().unwrap();
        let profile_key = ProfileCacheKey::for_workload(&w);
        cache.store(&profile_key, selected.profile()).unwrap();
        std::thread::sleep(Duration::from_millis(20)); // distinct mtimes

        // Storing the (large) simulated leg with a 1-byte budget must evict
        // the older profile entry but keep the leg just written.
        let sim_config = SimConfig::scaled(2);
        let key =
            SimulatedCacheKey::new(&w, selected.selection(), &sim_config, WarmupKind::MruReplay);
        let simulated = selected.simulate(&sim_config).unwrap();
        cache.store_simulated(&key, &simulated).unwrap();
        assert_eq!(cache.load(&profile_key).unwrap(), None, "older profile evicted");
        assert_eq!(cache.load_simulated(&key).unwrap(), Some(simulated.clone()));
        assert!(cache.stats().evictions >= 1);

        // And a newer profile store evicts the simulated entry in turn.
        std::thread::sleep(Duration::from_millis(20));
        cache.store(&profile_key, selected.profile()).unwrap();
        assert_eq!(cache.load_simulated(&key).unwrap(), None, "simulated leg evicted by LRU");
        fs::remove_dir_all(cache.root()).ok();
    }

    #[test]
    fn loads_touch_entries_so_recently_used_survive_eviction() {
        let w_small = workload(0.02);
        let w_large = workload(0.05);
        let cache = temp_cache("lru-touch");
        // Measure real entry sizes, then bound the cache so only two fit.
        let (p_small, _) = cache.load_or_profile(&w_small, &ExecutionPolicy::Serial).unwrap();
        let (_p_large, _) = cache.load_or_profile(&w_large, &ExecutionPolicy::Serial).unwrap();
        let total: u64 = fs::read_dir(cache.root())
            .unwrap()
            .flatten()
            .map(|e| e.metadata().unwrap().len())
            .sum();
        fs::remove_dir_all(cache.root()).ok();

        // Memory tier off: this test pins the disk tier's touch-on-load LRU.
        let cache = temp_cache("lru-touch").with_max_bytes(total).with_memory_max_bytes(0);
        cache.store(&ProfileCacheKey::for_workload(&w_small), &p_small).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        cache.load_or_profile(&w_large, &ExecutionPolicy::Serial).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        // Touch the small profile: it becomes most recently used.
        let (_, cached) = cache.load_or_profile(&w_small, &ExecutionPolicy::Serial).unwrap();
        assert!(cached);
        std::thread::sleep(Duration::from_millis(20));
        // A third entry (a selection) pushes the cache over budget; the
        // least-recently-used entry is now the *large* profile.
        let (sel, _) = cache
            .load_or_select(
                &p_small,
                &w_small,
                &SignatureConfig::combined(),
                &SimPointStrategy::new(SimPointConfig::paper()),
            )
            .unwrap();
        let _ = sel;
        assert!(cache.stats().evictions >= 1);
        let (_, small_cached) = cache.load_or_profile(&w_small, &ExecutionPolicy::Serial).unwrap();
        assert!(small_cached, "recently touched entry must survive eviction");
        fs::remove_dir_all(cache.root()).ok();
    }

    /// Regression test: a *failed* load (corrupt payload) must not mark the
    /// entry recently used.  The pre-fix `read_entry` touched the mtime
    /// before validating, so a corrupt entry became MRU and LRU eviction
    /// deleted valid older entries while protecting the garbage.
    #[test]
    fn failed_loads_do_not_promote_corrupt_entries_over_valid_ones() {
        let w_corrupt = workload(0.02);
        let w_valid = workload(0.05);
        let setup = temp_cache("corrupt-lru").with_max_bytes(u64::MAX).with_memory_max_bytes(0);
        let (_p_corrupt, _) = setup.load_or_profile(&w_corrupt, &ExecutionPolicy::Serial).unwrap();
        let (p_valid, _) = setup.load_or_profile(&w_valid, &ExecutionPolicy::Serial).unwrap();
        let key_corrupt = ProfileCacheKey::for_workload(&w_corrupt);
        let key_valid = ProfileCacheKey::for_workload(&w_valid);
        let path_corrupt = setup.profile_path(&key_corrupt);
        let path_valid = setup.profile_path(&key_valid);

        // Corrupt the first entry and back-date it far into the past: it is
        // now both garbage and the LRU victim-to-be.
        let bytes = fs::read(&path_corrupt).unwrap();
        fs::write(&path_corrupt, &bytes[..bytes.len() / 2]).unwrap();
        let old = SystemTime::now() - Duration::from_secs(600);
        fs::OpenOptions::new().write(true).open(&path_corrupt).unwrap().set_modified(old).unwrap();

        // Stage a third entry so its size is known, then remove it again.
        let sig = SignatureConfig::combined();
        let sp = SimPointConfig::paper();
        let selection = select_barrierpoints(&p_valid, &sig, &sp).unwrap();
        let selection_key =
            SelectionCacheKey::for_workload(&w_valid, &sig, &SimPointStrategy::new(sp));
        setup.store_selection(&selection_key, &selection).unwrap();
        let path_selection = setup.selection_path(&selection_key);
        let size_selection = fs::metadata(&path_selection).unwrap().len();
        let size_valid = fs::metadata(&path_valid).unwrap().len();
        fs::remove_file(&path_selection).unwrap();

        // Load the corrupt entry through a size-bounded handle: a miss — and
        // it must NOT touch the corrupt file's mtime.
        let bounded = ArtifactCache::new(setup.root())
            .with_max_bytes(size_valid + size_selection)
            .with_memory_max_bytes(0);
        assert_eq!(bounded.load(&key_corrupt).unwrap(), None);

        // The next store must evict the corrupt entry (oldest mtime), not
        // the valid one.  Pre-fix, the failed load had just made the corrupt
        // entry MRU, so the valid profile was deleted and garbage retained.
        bounded.store_selection(&selection_key, &selection).unwrap();
        assert!(!path_corrupt.exists(), "the corrupt entry must be the eviction victim");
        assert!(
            bounded.load(&key_valid).unwrap().is_some(),
            "the valid older entry must survive eviction"
        );
        fs::remove_dir_all(setup.root()).ok();
    }

    #[test]
    fn memory_tier_accounts_hits_per_artifact_kind() {
        let cache = temp_cache("mem-accounting");
        let w = workload(0.02);
        let sig = SignatureConfig::combined();
        let sp = SimPointStrategy::new(SimPointConfig::paper());
        let sim_config = SimConfig::scaled(2);

        let (profile, _) = cache.load_or_profile(&w, &ExecutionPolicy::Serial).unwrap();
        let (selection, _) = cache.load_or_select(&profile, &w, &sig, &sp).unwrap();
        let selected = crate::BarrierPoint::new(&w).profile().unwrap().select().unwrap();
        let key = SimulatedCacheKey::new(&w, &selection, &sim_config, WarmupKind::MruReplay);
        cache.load_or_simulate(&key, || selected.simulate(&sim_config)).unwrap();

        let before = cache.stats();
        cache.load_or_profile(&w, &ExecutionPolicy::Serial).unwrap();
        cache.load_or_select(&profile, &w, &sig, &sp).unwrap();
        cache.load_or_simulate(&key, || panic!("memory hit expected")).unwrap();
        let after = cache.stats();
        assert_eq!(after.profile_memory_hits - before.profile_memory_hits, 1);
        assert_eq!(after.selection_memory_hits - before.selection_memory_hits, 1);
        assert_eq!(after.simulated_memory_hits - before.simulated_memory_hits, 1);
        assert_eq!(after.disk_hits(), before.disk_hits(), "no disk decode on a warm handle");
        assert_eq!(after.memory_hits() - before.memory_hits(), 3);
        fs::remove_dir_all(cache.root()).ok();
    }

    /// The tier must be invisible in the artifacts: a memory-tier hit
    /// returns exactly what a cold-memory handle decodes from disk.
    #[test]
    fn memory_tier_hits_equal_disk_tier_decodes() {
        let cache = temp_cache("mem-bit-identity");
        let w = workload(0.02);
        let sig = SignatureConfig::combined();
        let sp = SimPointStrategy::new(SimPointConfig::paper());
        let (profile, _) = cache.load_or_profile(&w, &ExecutionPolicy::Serial).unwrap();
        let (selection, _) = cache.load_or_select(&profile, &w, &sig, &sp).unwrap();

        let (mem_profile, _) = cache.load_or_profile(&w, &ExecutionPolicy::Serial).unwrap();
        let (mem_selection, _) = cache.load_or_select(&profile, &w, &sig, &sp).unwrap();
        assert_eq!(cache.stats().memory_hits(), 2);

        let disk = reopen(&cache);
        let (disk_profile, _) = disk.load_or_profile(&w, &ExecutionPolicy::Serial).unwrap();
        let (disk_selection, _) = disk.load_or_select(&profile, &w, &sig, &sp).unwrap();
        assert_eq!(disk.stats().disk_hits(), 2);
        assert_eq!(mem_profile, disk_profile);
        assert_eq!(mem_selection, disk_selection);
        assert_eq!(selection, disk_selection);
        fs::remove_dir_all(cache.root()).ok();
    }

    #[test]
    fn memory_tier_byte_bound_evicts_lru_down_to_disk_hits() {
        let w_a = workload(0.02);
        let w_b = workload(0.05);
        // Measure the serialized entry sizes first.
        let sizing = temp_cache("mem-bound-sizing");
        sizing.load_or_profile(&w_a, &ExecutionPolicy::Serial).unwrap();
        let size_a =
            fs::metadata(sizing.profile_path(&ProfileCacheKey::for_workload(&w_a))).unwrap().len();
        sizing.load_or_profile(&w_b, &ExecutionPolicy::Serial).unwrap();
        let size_b =
            fs::metadata(sizing.profile_path(&ProfileCacheKey::for_workload(&w_b))).unwrap().len();
        fs::remove_dir_all(sizing.root()).ok();

        // Room for the larger entry but never both: inserting B evicts A
        // from memory; A's disk copy still serves.
        let cache = temp_cache("mem-bound").with_memory_max_bytes(size_b.max(size_a));
        cache.load_or_profile(&w_a, &ExecutionPolicy::Serial).unwrap();
        cache.load_or_profile(&w_b, &ExecutionPolicy::Serial).unwrap();
        assert!(cache.stats().memory_evictions >= 1, "the bound must evict");
        let before = cache.stats();
        let (_, cached) = cache.load_or_profile(&w_a, &ExecutionPolicy::Serial).unwrap();
        assert!(cached);
        let after = cache.stats();
        assert_eq!(after.profile_hits - before.profile_hits, 1, "degrades to a disk hit");
        assert_eq!(after.profile_misses, before.profile_misses, "never to a miss");
        fs::remove_dir_all(cache.root()).ok();
    }

    /// An artifact that on its own exceeds the memory bound is declined up
    /// front — it must not flush the resident (and fitting) entries out of
    /// the tier while failing to make room for itself.
    #[test]
    fn oversized_memory_entries_do_not_flush_the_tier() {
        let w = workload(0.02);
        let sig = SignatureConfig::combined();
        let sp = SimPointStrategy::new(SimPointConfig::paper());
        let sizing = temp_cache("mem-oversize-sizing");
        let (profile, _) = sizing.load_or_profile(&w, &ExecutionPolicy::Serial).unwrap();
        sizing.load_or_select(&profile, &w, &sig, &sp).unwrap();
        let size_profile =
            fs::metadata(sizing.profile_path(&ProfileCacheKey::for_workload(&w))).unwrap().len();
        let size_selection =
            fs::metadata(sizing.selection_path(&SelectionCacheKey::for_workload(&w, &sig, &sp)))
                .unwrap()
                .len();
        fs::remove_dir_all(sizing.root()).ok();
        assert!(size_profile > size_selection, "a profile must outweigh its selection");

        // Exactly room for the selection; the profile can never fit.
        let cache = temp_cache("mem-oversize").with_memory_max_bytes(size_selection);
        let (profile, _) = cache.load_or_profile(&w, &ExecutionPolicy::Serial).unwrap();
        cache.load_or_select(&profile, &w, &sig, &sp).unwrap();
        // The oversized profile insert (store and re-decode alike) must
        // neither evict the resident selection nor count as an eviction.
        cache.load_or_profile(&w, &ExecutionPolicy::Serial).unwrap();
        assert_eq!(
            cache.stats().memory_evictions,
            0,
            "declining an oversized insert evicts nothing"
        );
        let before = cache.stats();
        let (_, cached) = cache.load_or_select(&profile, &w, &sig, &sp).unwrap();
        assert!(cached);
        let after = cache.stats();
        assert_eq!(
            after.selection_memory_hits - before.selection_memory_hits,
            1,
            "the fitting entry must survive the oversized insert"
        );
        fs::remove_dir_all(cache.root()).ok();
    }

    #[test]
    fn memory_tier_write_through_and_reopen_coherence() {
        let cache = temp_cache("mem-coherence");
        let w = workload(0.02);
        let key = ProfileCacheKey::for_workload(&w);
        let (profile, _) = cache.load_or_profile(&w, &ExecutionPolicy::Serial).unwrap();

        // Delete the disk entry behind the cache's back: the memory tier
        // still serves the artifact to this process.
        fs::remove_file(cache.profile_path(&key)).unwrap();
        let (hit, cached) = cache.load_or_profile(&w, &ExecutionPolicy::Serial).unwrap();
        assert!(cached, "memory tier survives disk deletion");
        assert_eq!(hit, profile);
        assert_eq!(cache.stats().profile_memory_hits, 1);

        // A fresh handle (drop + reopen) misses both tiers for the deleted
        // entry and recomputes; for a surviving entry it hits disk.
        let reopened = reopen(&cache);
        let (_, cached) = reopened.load_or_profile(&w, &ExecutionPolicy::Serial).unwrap();
        assert!(!cached, "deleted disk entry + cold memory = miss");
        let (_, cached) = reopen(&reopened).load_or_profile(&w, &ExecutionPolicy::Serial).unwrap();
        assert!(cached, "the recompute re-persisted the entry");
        fs::remove_dir_all(cache.root()).ok();
    }

    #[test]
    fn memory_tier_is_shared_across_clones() {
        let cache = temp_cache("mem-clones");
        let w = workload(0.02);
        let (first, _) = cache.load_or_profile(&w, &ExecutionPolicy::Serial).unwrap();
        let clone = cache.clone();
        let (second, cached) = clone.load_or_profile(&w, &ExecutionPolicy::Serial).unwrap();
        assert!(cached);
        assert!(
            Arc::ptr_eq(&first, &second),
            "clones must share the memory tier's allocation, not re-decode"
        );
        assert_eq!(clone.stats().profile_memory_hits, 1, "stats shared too");
        fs::remove_dir_all(cache.root()).ok();
    }

    /// A fault-injected cache over a fresh directory; the [`FaultFs`]
    /// handle programs the plan.
    fn faulty_cache(tag: &str) -> (ArtifactCache, Arc<FaultFs>) {
        let dir = std::env::temp_dir()
            .join(format!("bp-artifact-cache-fault-{tag}-{}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        let faults = Arc::new(FaultFs::new());
        (ArtifactCache::new(dir).with_storage(faults.clone()), faults)
    }

    #[test]
    fn transient_read_faults_are_retried_and_recover() {
        let (cache, faults) = faulty_cache("retry");
        let w = workload(0.02);
        cache.load_or_profile(&w, &ExecutionPolicy::Serial).unwrap();

        // EINTR twice on the entry read; the bounded retry absorbs both.
        let reopened = ArtifactCache::new(cache.root()).with_storage(faults.clone());
        faults.inject(
            Fault::fail(FaultOp::Read, ErrorKind::Interrupted).on_path(PROFILE_EXT).times(2),
        );
        let (_, cached) = reopened.load_or_profile(&w, &ExecutionPolicy::Serial).unwrap();
        assert!(cached, "transient faults within the retry bound stay invisible");
        assert_eq!(reopened.stats().retries, 2);
        assert_eq!(reopened.stats().degraded_loads, 0);
        fs::remove_dir_all(cache.root()).ok();
    }

    #[test]
    fn enospc_store_degrades_to_memory_tier_and_clean_reopen_miss() {
        let (cache, faults) = faulty_cache("enospc");
        let w = workload(0.02);
        faults.inject(Fault::fail(FaultOp::Write, ErrorKind::StorageFull));

        // The store fails persistently; the pipeline must not.
        let (profile, cached) = cache.load_or_profile(&w, &ExecutionPolicy::Serial).unwrap();
        assert!(!cached);
        assert_eq!(cache.stats().degraded_stores, 1);
        assert_eq!(cache.stats().retries, 0, "ENOSPC is persistent — never retried");

        // This process still serves the artifact from the memory tier…
        let (again, cached) = cache.load_or_profile(&w, &ExecutionPolicy::Serial).unwrap();
        assert!(cached);
        assert!(Arc::ptr_eq(&profile, &again));

        // …and a fresh process sees a clean miss, never a torn entry.
        let reopened = ArtifactCache::new(cache.root());
        let (_, cached) = reopened.load_or_profile(&w, &ExecutionPolicy::Serial).unwrap();
        assert!(!cached, "nothing was persisted, so the reopen recomputes");
        fs::remove_dir_all(cache.root()).ok();
    }

    #[test]
    fn persistent_read_fault_degrades_to_recompute_and_heals() {
        let (cache, faults) = faulty_cache("read-degrade");
        let w = workload(0.02);
        cache.load_or_profile(&w, &ExecutionPolicy::Serial).unwrap();

        let reopened = ArtifactCache::new(cache.root()).with_storage(faults.clone());
        faults.inject(Fault::fail(FaultOp::Read, ErrorKind::PermissionDenied).on_path(PROFILE_EXT));
        let (_, cached) = reopened.load_or_profile(&w, &ExecutionPolicy::Serial).unwrap();
        assert!(!cached, "an unreadable entry is a miss, not an error");
        assert_eq!(reopened.stats().degraded_loads, 1);
        assert_eq!(reopened.stats().profile_misses, 1);

        // The recompute re-stored the entry; an unfaulted handle hits disk.
        let healed = ArtifactCache::new(cache.root());
        let (_, cached) = healed.load_or_profile(&w, &ExecutionPolicy::Serial).unwrap();
        assert!(cached, "the degraded miss healed the entry on disk");
        fs::remove_dir_all(cache.root()).ok();
    }

    /// Regression for the historical leak: a failed rename must delete its
    /// tmp file, not orphan it for a later cleanup scan.
    #[test]
    fn failed_rename_deletes_the_tmp_file() {
        let (cache, faults) = faulty_cache("rename-cleanup");
        let w = workload(0.02);
        faults.inject(Fault::fail(FaultOp::Rename, ErrorKind::PermissionDenied).on_path("tmp-"));

        let (_, cached) = cache.load_or_profile(&w, &ExecutionPolicy::Serial).unwrap();
        assert!(!cached);
        assert_eq!(cache.stats().degraded_stores, 1);
        let leftovers: Vec<String> = fs::read_dir(cache.root())
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|name| name.contains("tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "tmp files must not leak: {leftovers:?}");
        fs::remove_dir_all(cache.root()).ok();
    }

    #[test]
    fn held_lock_skips_the_guarded_scan_but_not_the_store() {
        let cache = temp_cache("lock-contended").with_max_bytes(1);
        let w = workload(0.02);
        fs::create_dir_all(cache.root()).unwrap();
        // A live holder: fresh timestamp, never released during the test.
        fs::write(cache.root().join(LOCK_FILE), format!("pid {} ts-ms {}\n", u32::MAX, epoch_ms()))
            .unwrap();

        let (_, cached) = cache.load_or_profile(&w, &ExecutionPolicy::Serial).unwrap();
        assert!(!cached);
        assert_eq!(cache.stats().lock_contended, 1);
        assert_eq!(cache.stats().evictions, 0, "the guarded eviction scan was skipped");
        let key = ProfileCacheKey::for_workload(&w);
        assert!(cache.profile_path(&key).exists(), "the store itself must still land");
        fs::remove_dir_all(cache.root()).ok();
    }

    #[test]
    fn stale_lock_is_taken_over_and_released() {
        let cache = temp_cache("lock-stale")
            .with_max_bytes(u64::MAX)
            .with_lock_stale_after(Duration::from_millis(10));
        let w = workload(0.02);
        fs::create_dir_all(cache.root()).unwrap();
        // A holder that died long ago (epoch timestamp zero).
        fs::write(cache.root().join(LOCK_FILE), "pid 1 ts-ms 0\n").unwrap();

        cache.load_or_profile(&w, &ExecutionPolicy::Serial).unwrap();
        assert_eq!(cache.stats().lock_contended, 0, "a stale lock must be taken over");
        assert!(!cache.root().join(LOCK_FILE).exists(), "released after the store");
        assert!(
            !fs::read_dir(cache.root())
                .unwrap()
                .any(|e| { e.unwrap().file_name().to_string_lossy().starts_with(LOCK_FILE) }),
            "no takeover leftovers either"
        );
        fs::remove_dir_all(cache.root()).ok();
    }

    #[test]
    fn persisted_stats_merge_across_reopen() {
        let cache = temp_cache("state-persist");
        let w = workload(0.02);
        cache.load_or_profile(&w, &ExecutionPolicy::Serial).unwrap();
        assert_eq!(cache.lifetime_stats(), cache.stats(), "no base before the first flush");
        cache.flush();

        let reopened = reopen(&cache);
        let (_, cached) = reopened.load_or_profile(&w, &ExecutionPolicy::Serial).unwrap();
        assert!(cached);
        assert_eq!(reopened.stats().profile_misses, 0, "session view: this run never missed");
        let lifetime = reopened.lifetime_stats();
        assert_eq!(lifetime.profile_misses, 1, "lifetime view: the first run's miss persists");
        assert_eq!(lifetime.profile_hits, 1, "merged with this session's disk hit");
        fs::remove_dir_all(cache.root()).ok();
    }

    #[test]
    fn corrupt_state_file_resets_stats_never_errors() {
        let cache = temp_cache("state-corrupt");
        let w = workload(0.02);
        cache.load_or_profile(&w, &ExecutionPolicy::Serial).unwrap();
        cache.flush();
        fs::write(cache.root().join(STATE_FILE), b"not a state file").unwrap();

        let reopened = reopen(&cache);
        reopened.load_or_profile(&w, &ExecutionPolicy::Serial).unwrap();
        assert_eq!(
            reopened.lifetime_stats(),
            reopened.stats(),
            "a corrupt base contributes zero, silently"
        );
        fs::remove_dir_all(cache.root()).ok();
    }

    #[test]
    fn state_codec_round_trips_and_rejects_foreign_bytes() {
        let stats = CacheStats {
            profile_hits: 7,
            degraded_stores: 2,
            lock_contended: 1,
            ..CacheStats::default()
        };
        assert_eq!(decode_state(&encode_state(&stats)), Some(stats));

        assert_eq!(decode_state(b""), None, "empty");
        assert_eq!(decode_state(b"BPSTjunk"), None, "torn after magic");
        let mut trailing = encode_state(&stats);
        trailing.push(0);
        assert_eq!(decode_state(&trailing), None, "trailing bytes");

        let mut wrong_version = serde::Serializer::new();
        wrong_version.write_bytes(STATE_MAGIC);
        wrong_version.write_u32(STATE_VERSION + 1);
        for _ in 0..STATS_FIELDS {
            wrong_version.write_u64(0);
        }
        assert_eq!(
            decode_state(&seal(wrong_version.into_bytes())),
            None,
            "future version (validly sealed, so the version check is what rejects it)"
        );
    }

    /// The seal catches what header validation cannot: any single bit flip
    /// anywhere in an entry — header, payload, or the checksum itself —
    /// must read as a miss, never decode to wrong data.
    #[test]
    fn any_single_bit_flip_in_an_entry_is_rejected() {
        let stats = CacheStats { profile_hits: 3, ..CacheStats::default() };
        let encoded = encode_state(&stats);
        for byte in 0..encoded.len() {
            for bit in 0..8 {
                let mut flipped = encoded.clone();
                flipped[byte] ^= 1 << bit;
                assert_eq!(
                    decode_state(&flipped),
                    None,
                    "flip of bit {bit} in byte {byte} must not decode"
                );
            }
        }

        let w = workload(0.02);
        let key = ProfileCacheKey::for_workload(&w);
        let profile = profile_application(&w).unwrap();
        let encoded = encode_profile(&key, &profile);
        // Sampling every 97th bit keeps the profile sweep fast while still
        // covering header, payload, and checksum regions.
        for bit_index in (0..encoded.len() * 8).step_by(97) {
            let mut flipped = encoded.clone();
            flipped[bit_index / 8] ^= 1 << (bit_index % 8);
            assert!(
                decode_profile(&flipped, &key).is_none(),
                "flip of bit {bit_index} must not decode"
            );
        }
    }

    #[test]
    fn lock_timestamps_parse_leniently() {
        assert_eq!(parse_lock_ts_ms(b"pid 42 ts-ms 1234\n"), Some(1234));
        assert_eq!(parse_lock_ts_ms(b"ts-ms 0"), Some(0));
        assert_eq!(parse_lock_ts_ms(b"pid 42\n"), None, "missing field");
        assert_eq!(parse_lock_ts_ms(b"pid 42 ts-ms\n"), None, "truncated");
        assert_eq!(parse_lock_ts_ms(b"ts-ms twelve"), None, "non-numeric");
        assert_eq!(parse_lock_ts_ms(&[0xff, 0xfe]), None, "not UTF-8");
    }

    /// Builds a real checkpoint set for `w` (4 segments, capacity 256).
    fn checkpoints_for(w: &impl Workload) -> WorkloadCheckpoints {
        let (_, _, ckpts) = crate::segment::profile_and_collect_warmup_checkpointed(
            w,
            &[256],
            &ExecutionPolicy::Serial,
            None,
            4,
        )
        .unwrap();
        ckpts
    }

    #[test]
    fn checkpoint_miss_then_hit_round_trips_both_tiers_and_accounts() {
        let cache = temp_cache("ckpt-roundtrip");
        let w = workload(0.02);
        let key = CheckpointCacheKey::for_workload(&w);

        assert_eq!(cache.probe_checkpoint(&key).unwrap(), None);
        assert_eq!(cache.stats().checkpoint_misses, 1);

        let ckpts = checkpoints_for(&w);
        cache.store_checkpoint(&key, &ckpts).unwrap();
        // Same handle: the store wrote through to the memory tier.
        let hit = cache.probe_checkpoint(&key).unwrap().expect("stored entry must hit");
        assert_eq!(*hit, ckpts);
        assert_eq!(cache.stats().checkpoint_memory_hits, 1);
        assert_eq!(cache.stats().checkpoint_hits, 0);

        // A reopened handle decodes the identical artifact from disk.
        let reopened = reopen(&cache);
        let disk = reopened.probe_checkpoint(&key).unwrap().expect("disk tier must serve");
        assert_eq!(*disk, ckpts);
        assert_eq!(reopened.stats().checkpoint_hits, 1);
        assert_eq!(reopened.stats().checkpoint_memory_hits, 0);
        fs::remove_dir_all(cache.root()).ok();
    }

    #[test]
    fn checkpoint_key_is_config_independent_but_content_addressed() {
        let small = workload(0.02);
        let large = workload(0.05);
        let key_small = CheckpointCacheKey::for_workload(&small);
        let key_large = CheckpointCacheKey::for_workload(&large);
        assert_ne!(key_small, key_large, "distinct content must not alias");
        assert_ne!(key_small.file_name(), key_large.file_name());
        assert!(key_small.file_name().ends_with(CHECKPOINT_EXT));
        // Same identity fields as the profile key: config knobs play no part.
        let profile_key = ProfileCacheKey::for_workload(&small);
        assert_eq!(key_small.workload_name(), profile_key.workload_name());
        assert_eq!(key_small.fingerprint(), profile_key.fingerprint());
    }

    #[test]
    fn corrupt_checkpoint_entries_self_heal_as_misses() {
        let cache = temp_cache("ckpt-corrupt");
        let w = workload(0.02);
        let key = CheckpointCacheKey::for_workload(&w);
        let ckpts = checkpoints_for(&w);
        cache.store_checkpoint(&key, &ckpts).unwrap();
        let path = cache.checkpoint_path(&key);
        let pristine = fs::read(&path).unwrap();

        // Truncation, a payload bit flip plus trailing garbage, and a stale
        // format version must all read as misses from a cold-memory handle.
        fs::write(&path, &pristine[..pristine.len() / 2]).unwrap();
        assert_eq!(reopen(&cache).load_checkpoint(&key).unwrap(), None, "truncated");

        let mut flipped = pristine.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0xff;
        flipped.push(0);
        fs::write(&path, &flipped).unwrap();
        assert_eq!(reopen(&cache).load_checkpoint(&key).unwrap(), None, "bit flip + garbage");

        let mut stale = pristine.clone();
        stale[4] = stale[4].wrapping_add(1); // bump the stored version
        fs::write(&path, &stale).unwrap();
        let reopened = reopen(&cache);
        assert_eq!(reopened.load_checkpoint(&key).unwrap(), None, "stale version");

        // A re-store heals the entry for cold handles.
        reopened.store_checkpoint(&key, &ckpts).unwrap();
        assert_eq!(reopen(&reopened).load_checkpoint(&key).unwrap().as_deref(), Some(&ckpts));
        fs::remove_dir_all(cache.root()).ok();
    }

    /// Regression: the LRU eviction scan and the orphan cleanup must treat
    /// the `ckpt` kind as a first-class citizen — evictable by newer stores,
    /// able to evict older entries, its tmp orphans reaped.
    #[test]
    fn checkpoint_entries_participate_in_lru_eviction_and_orphan_cleanup() {
        // Memory tier off: this test pins the *disk* tier's LRU behavior.
        let cache = temp_cache("ckpt-evict").with_max_bytes(1).with_memory_max_bytes(0);
        let w = workload(0.02);
        let profile = profile_application(&w).unwrap();
        let profile_key = ProfileCacheKey::for_workload(&w);
        let ckpt_key = CheckpointCacheKey::for_workload(&w);
        let ckpts = checkpoints_for(&w);

        // Storing the checkpoints with a 1-byte budget must evict the older
        // profile but keep the entry just written.
        cache.store(&profile_key, &profile).unwrap();
        std::thread::sleep(Duration::from_millis(20)); // distinct mtimes
        cache.store_checkpoint(&ckpt_key, &ckpts).unwrap();
        assert_eq!(cache.load(&profile_key).unwrap(), None, "older profile evicted");
        assert_eq!(cache.load_checkpoint(&ckpt_key).unwrap().as_deref(), Some(&ckpts));
        assert!(cache.stats().evictions >= 1);

        // And a newer profile store evicts the checkpoint entry in turn.
        std::thread::sleep(Duration::from_millis(20));
        cache.store(&profile_key, &profile).unwrap();
        assert_eq!(cache.load_checkpoint(&ckpt_key).unwrap(), None, "ckpt evicted by LRU");

        // Orphan cleanup: a stale bpckpt tmp file is reaped by the next
        // store's scan, a fresh one survives.
        let orphan = cache.root().join(format!("x.{CHECKPOINT_EXT}.tmp-99999"));
        fs::write(&orphan, b"torn").unwrap();
        let old = SystemTime::now() - Duration::from_secs(120);
        fs::OpenOptions::new().write(true).open(&orphan).unwrap().set_modified(old).unwrap();
        let live = cache.root().join(format!("y.{CHECKPOINT_EXT}.tmp-88888"));
        fs::write(&live, b"in-flight").unwrap();
        cache.store_checkpoint(&ckpt_key, &ckpts).unwrap();
        assert!(!orphan.exists(), "stale ckpt tmp orphan must be reaped");
        assert!(live.exists(), "fresh ckpt tmp files must survive");
        fs::remove_dir_all(cache.root()).ok();
    }

    #[test]
    fn invalidate_profile_drops_both_tiers_but_leaves_checkpoints() {
        let cache = temp_cache("ckpt-invalidate");
        let w = workload(0.02);
        let profile_key = ProfileCacheKey::for_workload(&w);
        let ckpt_key = CheckpointCacheKey::for_workload(&w);
        cache.load_or_profile(&w, &ExecutionPolicy::Serial).unwrap();
        cache.store_checkpoint(&ckpt_key, &checkpoints_for(&w)).unwrap();

        assert!(cache.invalidate_profile(&profile_key), "entry existed");
        let (_, cached) = cache.load_or_profile(&w, &ExecutionPolicy::Serial).unwrap();
        assert!(!cached, "both tiers dropped: the next load recomputes");
        assert!(
            cache.load_checkpoint(&ckpt_key).unwrap().is_some(),
            "checkpoints are keyed separately and must survive"
        );
        // Idempotent on the now re-stored entry, and false once truly gone.
        assert!(cache.invalidate_profile(&profile_key));
        assert!(!cache.invalidate_profile(&profile_key), "nothing left to drop");
        fs::remove_dir_all(cache.root()).ok();
    }

    #[test]
    fn checkpoint_io_failures_degrade_to_misses_never_errors() {
        let (cache, faults) = faulty_cache("ckpt-degrade");
        let w = workload(0.02);
        let key = CheckpointCacheKey::for_workload(&w);
        let ckpts = checkpoints_for(&w);
        cache.store_checkpoint(&key, &ckpts).unwrap();

        let reopened = ArtifactCache::new(cache.root()).with_storage(faults.clone());
        faults.inject(
            Fault::fail(FaultOp::Read, ErrorKind::PermissionDenied).on_path(CHECKPOINT_EXT),
        );
        assert_eq!(
            reopened.probe_checkpoint(&key).unwrap(),
            None,
            "an unreadable checkpoint is a miss, not an error"
        );
        assert_eq!(reopened.stats().degraded_loads, 1);
        assert_eq!(reopened.stats().checkpoint_misses, 1);

        // Stores degrade too: the memory tier still serves this process.
        faults.inject(Fault::fail(FaultOp::Write, ErrorKind::StorageFull));
        let degraded = ArtifactCache::new(cache.root()).with_storage(faults.clone());
        degraded.store_checkpoint_arc(&key, &Arc::new(ckpts.clone())).unwrap();
        assert_eq!(degraded.stats().degraded_stores, 1);
        assert_eq!(*degraded.probe_checkpoint(&key).unwrap().unwrap(), ckpts);
        fs::remove_dir_all(cache.root()).ok();
    }
}
