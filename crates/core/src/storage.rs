//! Storage seam for the on-disk tier of [`crate::ArtifactCache`].
//!
//! Every byte the cache reads from or writes to disk flows through the
//! [`Storage`] trait, so the cache's failure behaviour can be exercised
//! deterministically in tests. Two implementations ship with the crate:
//!
//! * [`RealFs`] — the production backend, a thin veneer over `std::fs`
//!   with an optional fsync-before-rename durability mode.
//! * [`FaultFs`] — a fault-injecting decorator around any other storage.
//!   Tests program it with a plan of injected errors (ENOSPC, permission
//!   failures, EINTR-style transients), torn writes, and crash-at-op-N
//!   kill points, then assert the cache degrades instead of corrupting.
//!
//! `FaultFs` is compiled unconditionally so integration tests in
//! dependent crates can use it, but it is a testing tool: production
//! callers should never wrap their storage in it.
//!
//! The seam is deliberately narrow: it exposes exactly the primitives
//! the cache needs (whole-file read/write, create-exclusive, rename,
//! remove, directory scan, mtime touch) rather than a general
//! filesystem API. Locking is built *on top of* these primitives by the
//! cache (create-exclusive lock files), not inside the trait, so fault
//! plans cover the lock protocol too.

use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::SystemTime;

/// Metadata for one regular file returned by [`Storage::read_dir`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntryInfo {
    /// Absolute path of the file.
    pub path: PathBuf,
    /// Size of the file in bytes.
    pub len: u64,
    /// Last-modification time of the file.
    pub modified: SystemTime,
}

/// The narrow filesystem surface [`crate::ArtifactCache`] is built on.
///
/// Implementations must be safe to share across threads; the cache
/// holds one behind an `Arc` and clones freely. All operations are
/// whole-file and path-addressed — there are no open handles to leak
/// across a fault boundary.
pub trait Storage: fmt::Debug + Send + Sync {
    /// Read the entire contents of `path`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Write `bytes` to `path`, replacing any existing file.
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Create `path` exclusively (failing with `AlreadyExists` if it is
    /// present) and write `bytes` to it. Used for advisory lock files.
    fn create_new(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Atomically rename `from` to `to`, replacing `to` if it exists.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Remove the file at `path`.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Create `path` and any missing parent directories.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;

    /// List the regular files directly inside `path`.
    fn read_dir(&self, path: &Path) -> io::Result<Vec<DirEntryInfo>>;

    /// Set the last-modification time of `path` to `mtime`.
    fn set_mtime(&self, path: &Path, mtime: SystemTime) -> io::Result<()>;
}

/// Production storage: `std::fs`, optionally fsyncing file contents
/// before they become visible under their final name.
///
/// The default (non-durable) mode matches what the cache always did:
/// write a temp file, rename it into place, and rely on the entry
/// self-validating on load if the machine loses power mid-write. The
/// [`RealFs::durable`] mode additionally calls `sync_all` on the temp
/// file before the rename, so a renamed entry's *contents* survive a
/// power cut, at a measurable cost per store.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealFs {
    fsync_writes: bool,
}

impl RealFs {
    /// Storage with the default (no-fsync) write path.
    pub fn new() -> Self {
        Self::default()
    }

    /// Storage that fsyncs file contents before `rename` makes them
    /// visible, trading store latency for power-cut durability.
    pub fn durable() -> Self {
        Self { fsync_writes: true }
    }
}

impl Storage for RealFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        if self.fsync_writes {
            let mut file = fs::File::create(path)?;
            file.write_all(bytes)?;
            file.sync_all()
        } else {
            fs::write(path, bytes)
        }
    }

    fn create_new(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut file = fs::File::create_new(path)?;
        file.write_all(bytes)?;
        file.flush()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        fs::create_dir_all(path)
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<DirEntryInfo>> {
        let mut entries = Vec::new();
        for entry in fs::read_dir(path)? {
            let entry = entry?;
            let metadata = entry.metadata()?;
            if !metadata.is_file() {
                continue;
            }
            entries.push(DirEntryInfo {
                path: entry.path(),
                len: metadata.len(),
                modified: metadata.modified()?,
            });
        }
        Ok(entries)
    }

    fn set_mtime(&self, path: &Path, mtime: SystemTime) -> io::Result<()> {
        let file = fs::OpenOptions::new().write(true).open(path)?;
        file.set_modified(mtime)
    }
}

/// The storage operation a [`Fault`] matches against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// Match [`Storage::read`].
    Read,
    /// Match [`Storage::write`].
    Write,
    /// Match [`Storage::create_new`].
    CreateNew,
    /// Match [`Storage::rename`].
    Rename,
    /// Match [`Storage::remove_file`].
    Remove,
    /// Match [`Storage::create_dir_all`].
    CreateDir,
    /// Match [`Storage::read_dir`].
    ReadDir,
    /// Match [`Storage::set_mtime`].
    SetMtime,
    /// Match every operation.
    Any,
}

impl FaultOp {
    fn matches(self, op: FaultOp) -> bool {
        self == FaultOp::Any || self == op
    }
}

/// What an injected fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultKind {
    /// Fail the operation with the given error kind, without touching
    /// the underlying storage.
    Error(io::ErrorKind),
    /// For writes: persist only the first half of the payload, then
    /// fail. Models a torn write that ran out of space or was cut off.
    TornWrite(io::ErrorKind),
}

/// One programmable fault in a [`FaultFs`] plan.
///
/// A fault fires on operations whose type matches [`FaultOp`] and whose
/// path contains the configured substring (if any). `after(n)` skips
/// the first `n` matching operations; `times(k)` limits the fault to
/// `k` firings, which is how EINTR-style transients are modelled.
#[derive(Debug, Clone)]
pub struct Fault {
    op: FaultOp,
    kind: FaultKind,
    path_contains: Option<String>,
    skip: u64,
    times: u64,
    matched: u64,
    fired: u64,
}

impl Fault {
    /// A fault that fails every matching operation with `kind`.
    pub fn fail(op: FaultOp, kind: io::ErrorKind) -> Self {
        Self {
            op,
            kind: FaultKind::Error(kind),
            path_contains: None,
            skip: 0,
            times: u64::MAX,
            matched: 0,
            fired: 0,
        }
    }

    /// A fault that persists half of one write's payload, then fails it
    /// with `kind`.
    pub fn torn_write(kind: io::ErrorKind) -> Self {
        Self {
            op: FaultOp::Write,
            kind: FaultKind::TornWrite(kind),
            path_contains: None,
            skip: 0,
            times: 1,
            matched: 0,
            fired: 0,
        }
    }

    /// Restrict the fault to paths whose string form contains `needle`.
    pub fn on_path(mut self, needle: &str) -> Self {
        self.path_contains = Some(needle.to_owned());
        self
    }

    /// Skip the first `n` matching operations before firing.
    pub fn after(mut self, n: u64) -> Self {
        self.skip = n;
        self
    }

    /// Fire at most `n` times, then let matching operations through.
    pub fn times(mut self, n: u64) -> Self {
        self.times = n;
        self
    }

    /// Fire exactly once — the shape of a transient fault.
    pub fn once(self) -> Self {
        self.times(1)
    }

    fn try_fire(&mut self, op: FaultOp, path: &Path) -> Option<FaultKind> {
        if !self.op.matches(op) {
            return None;
        }
        if let Some(needle) = &self.path_contains {
            if !path.to_string_lossy().contains(needle.as_str()) {
                return None;
            }
        }
        self.matched += 1;
        if self.matched <= self.skip || self.fired >= self.times {
            return None;
        }
        self.fired += 1;
        Some(self.kind)
    }
}

#[derive(Debug, Default)]
struct FaultState {
    ops: u64,
    crash_at: Option<u64>,
    crashed: bool,
    faults: Vec<Fault>,
}

/// Fault-injecting storage decorator for tests.
///
/// Wraps another [`Storage`] and applies a programmable plan of
/// failures to the operations flowing through it. Every operation —
/// including reads and directory scans — consumes one slot of a global
/// op counter, which makes two things deterministic:
///
/// * **Single faults** fire on exactly the Nth matching op
///   ([`Fault::after`]) or the first K ([`Fault::times`]), so a test
///   replays the same failure every run.
/// * **Kill points** ([`FaultFs::crash_at_op`]) simulate a process
///   death: the Nth operation half-applies (a write persists a torn
///   prefix; any other mutation does nothing) and every operation after
///   it fails. A torture suite counts the ops in a healthy store, then
///   replays the store crashing at each index in turn.
///
/// This type is a testing tool. It is compiled unconditionally so
/// integration suites in dependent crates can drive it, but production
/// code should never construct one.
#[derive(Debug)]
pub struct FaultFs {
    inner: Box<dyn Storage>,
    state: Mutex<FaultState>,
}

impl Default for FaultFs {
    fn default() -> Self {
        Self::new()
    }
}

/// The error kind used for operations refused after a simulated crash.
/// Deliberately a *persistent* kind so retry loops fail fast instead of
/// spinning against a dead process.
const CRASH_ERROR_KIND: io::ErrorKind = io::ErrorKind::Other;

impl FaultFs {
    /// Fault-injecting storage over the real filesystem.
    pub fn new() -> Self {
        Self::wrapping(RealFs::new())
    }

    /// Fault-injecting storage over an arbitrary backend.
    pub fn wrapping(inner: impl Storage + 'static) -> Self {
        Self { inner: Box::new(inner), state: Mutex::new(FaultState::default()) }
    }

    /// Add a fault to the plan. Faults are evaluated in insertion order
    /// and the first one that fires wins for that operation.
    pub fn inject(&self, fault: Fault) {
        self.lock_state().faults.push(fault);
    }

    /// Simulate a process crash at global op index `n` (0-based): op
    /// `n` half-applies and fails, every later op fails outright.
    pub fn crash_at_op(&self, n: u64) {
        self.lock_state().crash_at = Some(n);
    }

    /// Number of operations issued so far.
    pub fn ops(&self) -> u64 {
        self.lock_state().ops
    }

    /// Remove all faults and kill points and reset the op counter.
    pub fn reset(&self) {
        let mut state = self.lock_state();
        *state = FaultState::default();
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, FaultState> {
        // A panic while holding this mutex leaves only fault-plan
        // bookkeeping behind; the poisoned state is still coherent.
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Account one operation and decide its fate.
    fn check(&self, op: FaultOp, path: &Path) -> io::Result<Action> {
        let mut state = self.lock_state();
        let index = state.ops;
        state.ops += 1;
        if state.crashed {
            return Err(crash_error());
        }
        if state.crash_at == Some(index) {
            state.crashed = true;
            return Ok(Action::Crash);
        }
        for fault in &mut state.faults {
            match fault.try_fire(op, path) {
                Some(FaultKind::Error(kind)) => {
                    return Err(io::Error::new(kind, format!("injected {op:?} fault")));
                }
                Some(FaultKind::TornWrite(kind)) => return Ok(Action::Torn(kind)),
                None => {}
            }
        }
        Ok(Action::Proceed)
    }
}

fn crash_error() -> io::Error {
    io::Error::new(CRASH_ERROR_KIND, "storage unavailable: simulated crash")
}

enum Action {
    Proceed,
    /// Persist a torn prefix of the write, then fail with the kind.
    Torn(io::ErrorKind),
    /// The kill point: half-apply this op, fail it, fail everything after.
    Crash,
}

impl Storage for FaultFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        match self.check(FaultOp::Read, path)? {
            Action::Proceed => self.inner.read(path),
            Action::Torn(kind) => Err(io::Error::new(kind, "injected read fault")),
            Action::Crash => Err(crash_error()),
        }
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.check(FaultOp::Write, path)? {
            Action::Proceed => self.inner.write(path, bytes),
            Action::Torn(kind) => {
                let _ = self.inner.write(path, &bytes[..bytes.len() / 2]);
                Err(io::Error::new(kind, "injected torn write"))
            }
            Action::Crash => {
                // The process died mid-write: a torn prefix is on disk.
                let _ = self.inner.write(path, &bytes[..bytes.len() / 2]);
                Err(crash_error())
            }
        }
    }

    fn create_new(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.check(FaultOp::CreateNew, path)? {
            Action::Proceed => self.inner.create_new(path, bytes),
            Action::Torn(kind) => Err(io::Error::new(kind, "injected create_new fault")),
            Action::Crash => {
                // Died between creating the lock file and writing its
                // body: an empty lock is left behind.
                let _ = self.inner.create_new(path, &[]);
                Err(crash_error())
            }
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.check(FaultOp::Rename, from)? {
            Action::Proceed => self.inner.rename(from, to),
            Action::Torn(kind) => Err(io::Error::new(kind, "injected rename fault")),
            Action::Crash => Err(crash_error()),
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        match self.check(FaultOp::Remove, path)? {
            Action::Proceed => self.inner.remove_file(path),
            Action::Torn(kind) => Err(io::Error::new(kind, "injected remove fault")),
            Action::Crash => Err(crash_error()),
        }
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        match self.check(FaultOp::CreateDir, path)? {
            Action::Proceed => self.inner.create_dir_all(path),
            Action::Torn(kind) => Err(io::Error::new(kind, "injected create_dir fault")),
            Action::Crash => Err(crash_error()),
        }
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<DirEntryInfo>> {
        match self.check(FaultOp::ReadDir, path)? {
            Action::Proceed => self.inner.read_dir(path),
            Action::Torn(kind) => Err(io::Error::new(kind, "injected read_dir fault")),
            Action::Crash => Err(crash_error()),
        }
    }

    fn set_mtime(&self, path: &Path, mtime: SystemTime) -> io::Result<()> {
        match self.check(FaultOp::SetMtime, path)? {
            Action::Proceed => self.inner.set_mtime(path, mtime),
            Action::Torn(kind) => Err(io::Error::new(kind, "injected set_mtime fault")),
            Action::Crash => Err(crash_error()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::ErrorKind;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bp-storage-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    #[test]
    fn real_fs_round_trips_and_lists_files() {
        let dir = scratch("roundtrip");
        let fs_ = RealFs::new();
        let file = dir.join("a.bin");
        fs_.write(&file, b"payload").expect("write");
        assert_eq!(fs_.read(&file).expect("read"), b"payload");

        let listing = fs_.read_dir(&dir).expect("read_dir");
        assert_eq!(listing.len(), 1);
        assert_eq!(listing[0].path, file);
        assert_eq!(listing[0].len, 7);

        fs_.rename(&file, &dir.join("b.bin")).expect("rename");
        assert!(fs_.read(&file).is_err());
        assert_eq!(fs_.read(&dir.join("b.bin")).expect("read renamed"), b"payload");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn real_fs_durable_mode_round_trips() {
        let dir = scratch("durable");
        let fs_ = RealFs::durable();
        let file = dir.join("a.bin");
        fs_.write(&file, b"synced").expect("durable write");
        assert_eq!(fs_.read(&file).expect("read"), b"synced");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_new_is_exclusive() {
        let dir = scratch("excl");
        let fs_ = RealFs::new();
        let lock = dir.join(".lock");
        fs_.create_new(&lock, b"pid 1").expect("first create");
        let second = fs_.create_new(&lock, b"pid 2");
        assert_eq!(second.expect_err("must be exclusive").kind(), ErrorKind::AlreadyExists);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_fault_fires_on_matching_op_only() {
        let dir = scratch("fault-match");
        let fs_ = FaultFs::new();
        fs_.inject(Fault::fail(FaultOp::Write, ErrorKind::StorageFull).on_path("victim"));

        fs_.write(&dir.join("other.bin"), b"ok").expect("unmatched path passes");
        let err = fs_.write(&dir.join("victim.bin"), b"no").expect_err("matched path fails");
        assert_eq!(err.kind(), ErrorKind::StorageFull);
        // The failed write must not have touched the filesystem.
        assert!(fs_.read(&dir.join("victim.bin")).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_fault_fires_a_bounded_number_of_times() {
        let dir = scratch("fault-transient");
        let fs_ = FaultFs::new();
        fs_.inject(Fault::fail(FaultOp::Write, ErrorKind::Interrupted).times(2));

        let file = dir.join("a.bin");
        assert!(fs_.write(&file, b"x").is_err());
        assert!(fs_.write(&file, b"x").is_err());
        fs_.write(&file, b"x").expect("third attempt passes");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn after_skips_matching_ops_before_firing() {
        let dir = scratch("fault-after");
        let fs_ = FaultFs::new();
        fs_.inject(Fault::fail(FaultOp::Write, ErrorKind::PermissionDenied).after(1).once());

        let file = dir.join("a.bin");
        fs_.write(&file, b"first").expect("skipped");
        assert!(fs_.write(&file, b"second").is_err());
        fs_.write(&file, b"third").expect("exhausted");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_persists_half_the_payload() {
        let dir = scratch("fault-torn");
        let fs_ = FaultFs::new();
        fs_.inject(Fault::torn_write(ErrorKind::StorageFull));

        let file = dir.join("a.bin");
        let err = fs_.write(&file, b"12345678").expect_err("torn write fails");
        assert_eq!(err.kind(), ErrorKind::StorageFull);
        assert_eq!(fs_.read(&file).expect("torn prefix on disk"), b"1234");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_at_op_half_applies_then_kills_everything_after() {
        let dir = scratch("fault-crash");
        let fs_ = FaultFs::new();
        // Op 0 is the read below, op 1 is the write that crashes.
        fs_.crash_at_op(1);

        assert!(fs_.read(&dir.join("missing.bin")).is_err());
        let err = fs_.write(&dir.join("a.bin"), b"12345678").expect_err("kill point");
        assert_eq!(err.kind(), CRASH_ERROR_KIND);
        // Dead process: every later op fails, even ones that would succeed.
        assert!(fs_.write(&dir.join("b.bin"), b"x").is_err());
        assert!(fs_.read_dir(&dir).is_err());
        // But the torn prefix from the dying write is on disk for a
        // *fresh* storage (a reopened process) to observe.
        assert_eq!(RealFs::new().read(&dir.join("a.bin")).expect("torn prefix"), b"1234");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn op_counter_counts_every_operation() {
        let dir = scratch("fault-ops");
        let fs_ = FaultFs::new();
        assert_eq!(fs_.ops(), 0);
        let _ = fs_.read(&dir.join("missing.bin"));
        let _ = fs_.write(&dir.join("a.bin"), b"x");
        let _ = fs_.read_dir(&dir);
        assert_eq!(fs_.ops(), 3);
        fs_.reset();
        assert_eq!(fs_.ops(), 0);
        let _ = fs::remove_dir_all(&dir);
    }
}
