use serde::{Deserialize, Serialize};

/// Timing model of a global synchronization barrier.
///
/// The paper uses the passive OpenMP wait policy: threads that reach the
/// barrier early block without consuming CPU resources, so an inter-barrier
/// region's duration is the duration of its slowest thread plus the cost of
/// the barrier operation itself (a small base cost plus a per-core component
/// for the arrival/release traffic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BarrierModel {
    base_cycles: u64,
    per_core_cycles: u64,
}

impl BarrierModel {
    /// Creates a barrier model with the given fixed and per-core costs.
    pub fn new(base_cycles: u64, per_core_cycles: u64) -> Self {
        Self { base_cycles, per_core_cycles }
    }

    /// Cost in cycles of one barrier among `cores` cores.
    pub fn barrier_cycles(&self, cores: usize) -> u64 {
        self.base_cycles + self.per_core_cycles * cores as u64
    }

    /// Wall-clock duration in cycles of a region whose threads individually
    /// took `thread_cycles`, including the closing barrier.
    ///
    /// # Panics
    ///
    /// Panics if `thread_cycles` is empty.
    pub fn region_cycles(&self, thread_cycles: &[u64]) -> u64 {
        assert!(!thread_cycles.is_empty(), "region_cycles requires at least one thread");
        let slowest = thread_cycles.iter().copied().max().unwrap_or(0);
        slowest + self.barrier_cycles(thread_cycles.len())
    }

    /// Fraction of aggregate core time spent waiting at the barrier
    /// (0 = perfectly balanced, approaching 1 = a single thread does all work).
    pub fn imbalance(&self, thread_cycles: &[u64]) -> f64 {
        let slowest = *thread_cycles.iter().max().unwrap_or(&0) as f64;
        if slowest == 0.0 {
            return 0.0;
        }
        let total: u64 = thread_cycles.iter().sum();
        let ideal = total as f64;
        let spent = slowest * thread_cycles.len() as f64;
        (spent - ideal) / spent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slowest_thread_determines_duration() {
        let barrier = BarrierModel::new(100, 10);
        assert_eq!(barrier.region_cycles(&[500, 900, 700, 600]), 900 + 100 + 40);
    }

    #[test]
    fn barrier_cost_scales_with_cores() {
        let barrier = BarrierModel::new(200, 20);
        assert_eq!(barrier.barrier_cycles(8), 360);
        assert_eq!(barrier.barrier_cycles(32), 840);
    }

    #[test]
    fn imbalance_zero_when_balanced() {
        let barrier = BarrierModel::new(0, 0);
        assert_eq!(barrier.imbalance(&[100, 100, 100]), 0.0);
        let skewed = barrier.imbalance(&[100, 10, 10]);
        assert!(skewed > 0.5);
    }

    #[test]
    #[should_panic]
    fn empty_thread_list_panics() {
        let barrier = BarrierModel::new(0, 0);
        let _ = barrier.region_cycles(&[]);
    }
}
