use crate::barrier::BarrierModel;
use crate::config::SimConfig;
use crate::core_model::CoreModel;
use crate::metrics::{RegionMetrics, RunMetrics};
use bp_mem::{HierarchySnapshot, MemoryHierarchy};
use bp_workload::Workload;

/// The simulated multi-core machine.
///
/// A [`Machine`] couples one [`CoreModel`] per core with a shared
/// [`MemoryHierarchy`] and a [`BarrierModel`].  Threads of an inter-barrier
/// region are interleaved at basic-block granularity so that data sharing and
/// coherence interactions between cores are captured, then joined at the
/// barrier (passive wait: the region's wall-clock time is the slowest
/// thread's time plus the barrier cost).
#[derive(Debug, Clone)]
pub struct Machine {
    config: SimConfig,
    hierarchy: MemoryHierarchy,
    barrier: BarrierModel,
}

impl Machine {
    /// Builds a machine with cold caches.
    pub fn new(config: &SimConfig) -> Self {
        Self {
            config: *config,
            hierarchy: MemoryHierarchy::new(&config.memory, config.num_cores),
            barrier: BarrierModel::new(config.barrier_base_cycles, config.barrier_per_core_cycles),
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Mutable access to the memory hierarchy (used by warmup strategies).
    pub fn hierarchy_mut(&mut self) -> &mut MemoryHierarchy {
        &mut self.hierarchy
    }

    /// Read access to the memory hierarchy.
    pub fn hierarchy(&self) -> &MemoryHierarchy {
        &self.hierarchy
    }

    /// Drops all cached state (cold caches) and clears statistics.
    pub fn reset(&mut self) {
        self.hierarchy.clear();
        self.hierarchy.reset_stats();
    }

    /// Captures the memory-hierarchy state (for checkpoint/perfect warmup).
    pub fn snapshot(&self) -> HierarchySnapshot {
        self.hierarchy.snapshot()
    }

    /// Restores a previously captured memory-hierarchy state.
    pub fn restore(&mut self, snapshot: &HierarchySnapshot) {
        self.hierarchy.restore(snapshot);
    }

    /// Simulates one inter-barrier region on the current (possibly warm)
    /// machine state and returns its metrics.
    ///
    /// Thread traces are interleaved round-robin at basic-block granularity.
    ///
    /// # Panics
    ///
    /// Panics if the workload's thread count differs from the machine's core
    /// count or if `region` is out of range.
    pub fn run_region<W: Workload + ?Sized>(
        &mut self,
        workload: &W,
        region: usize,
    ) -> RegionMetrics {
        assert_eq!(
            workload.num_threads(),
            self.config.num_cores,
            "workload threads must match machine cores"
        );
        let cores = self.config.num_cores;
        let stats_before = *self.hierarchy.stats();

        let mut models: Vec<CoreModel> =
            (0..cores).map(|c| CoreModel::new(&self.config.core, c)).collect();
        let mut traces: Vec<_> = (0..cores).map(|t| workload.region_trace(region, t)).collect();
        let mut live = cores;
        // Round-robin interleaving of block executions across threads.
        while live > 0 {
            live = 0;
            for (thread, trace) in traces.iter_mut().enumerate() {
                if let Some(exec) = trace.next() {
                    models[thread].execute_block(&exec, &mut self.hierarchy);
                    live += 1;
                }
            }
        }

        let per_thread_cycles: Vec<u64> = models.iter().map(|m| m.cycles()).collect();
        let instructions: u64 = models.iter().map(|m| m.instructions()).sum();
        let cycles = self.barrier.region_cycles(&per_thread_cycles);
        let memory = self.hierarchy.stats().delta_since(&stats_before);

        RegionMetrics { region, cycles, instructions, per_thread_cycles, memory }
    }

    /// Simulates the complete application (all inter-barrier regions in
    /// program order, caches warm across regions) and returns per-region and
    /// aggregate metrics — the ground truth the sampling methodology is
    /// compared against, and the source of "perfect warmup" region metrics.
    pub fn run_full<W: Workload + ?Sized>(&mut self, workload: &W) -> RunMetrics {
        self.reset();
        let regions =
            (0..workload.num_regions()).map(|region| self.run_region(workload, region)).collect();
        RunMetrics::new(regions, self.config.core.frequency_ghz)
    }

    /// Runs only the regions *before* `region` functionally (memory accesses
    /// are applied to the hierarchy, no timing): functional cache warming, the
    /// expensive warmup baseline of Section IV.
    pub fn functionally_warm_up_to<W: Workload + ?Sized>(&mut self, workload: &W, region: usize) {
        for r in 0..region {
            for thread in 0..workload.num_threads() {
                for exec in workload.region_trace(r, thread) {
                    for access in &exec.accesses {
                        self.hierarchy.access(thread, access.addr, access.kind.is_write());
                    }
                }
            }
        }
        self.hierarchy.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_workload::{Benchmark, WorkloadConfig};

    fn small_workload(threads: usize) -> impl Workload {
        Benchmark::NpbCg.build(&WorkloadConfig::new(threads).with_scale(0.02))
    }

    #[test]
    fn full_run_covers_every_region() {
        let w = small_workload(4);
        let mut machine = Machine::new(&SimConfig::scaled(4));
        let run = machine.run_full(&w);
        assert_eq!(run.regions().len(), 46);
        assert!(run.total_instructions() > 0);
        assert!(run.total_cycles() > 0);
        assert!(run.regions().iter().all(|r| r.cycles > 0));
    }

    #[test]
    fn full_run_is_deterministic() {
        let w = small_workload(2);
        let a = Machine::new(&SimConfig::scaled(2)).run_full(&w);
        let b = Machine::new(&SimConfig::scaled(2)).run_full(&w);
        assert_eq!(a, b);
    }

    #[test]
    fn cold_region_is_slower_than_in_context() {
        let w = small_workload(2);
        let mut machine = Machine::new(&SimConfig::scaled(2));
        let full = machine.run_full(&w);
        // Re-simulate region 10 with completely cold caches.
        machine.reset();
        let cold = machine.run_region(&w, 10);
        let in_context = &full.regions()[10];
        assert_eq!(cold.instructions, in_context.instructions);
        assert!(
            cold.cycles >= in_context.cycles,
            "cold {} should not be faster than warm {}",
            cold.cycles,
            in_context.cycles
        );
        assert!(cold.memory.dram_accesses >= in_context.memory.dram_accesses);
    }

    #[test]
    fn functional_warmup_approaches_in_context_behaviour() {
        let w = small_workload(2);
        let mut machine = Machine::new(&SimConfig::scaled(2));
        let full = machine.run_full(&w);
        let region = 7;

        machine.reset();
        let cold = machine.run_region(&w, region);

        machine.reset();
        machine.functionally_warm_up_to(&w, region);
        let warmed = machine.run_region(&w, region);

        let truth = full.regions()[region].cycles as f64;
        let cold_err = (cold.cycles as f64 - truth).abs();
        let warm_err = (warmed.cycles as f64 - truth).abs();
        assert!(
            warm_err <= cold_err,
            "functional warmup error {warm_err} should not exceed cold error {cold_err}"
        );
    }

    #[test]
    #[should_panic]
    fn thread_core_mismatch_panics() {
        let w = small_workload(4);
        let mut machine = Machine::new(&SimConfig::scaled(2));
        let _ = machine.run_region(&w, 0);
    }
}
