use bp_mem::MemoryStats;
use serde::{Deserialize, Serialize};

/// Timing and memory statistics of one inter-barrier region.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionMetrics {
    /// Region index within the application.
    pub region: usize,
    /// Wall-clock duration of the region in cycles (slowest thread + barrier).
    pub cycles: u64,
    /// Aggregate instructions retired by all threads.
    pub instructions: u64,
    /// Per-thread busy cycles (excluding barrier wait).
    pub per_thread_cycles: Vec<u64>,
    /// Memory-hierarchy activity attributed to the region.
    pub memory: MemoryStats,
}

impl RegionMetrics {
    /// Aggregate instructions per wall-clock cycle (the "aggregate IPC" of
    /// Figure 3).
    pub fn aggregate_ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Cycles per instruction (aggregate).
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }

    /// DRAM accesses per thousand instructions in this region.
    pub fn dram_apki(&self) -> f64 {
        self.memory.dram_apki(self.instructions)
    }

    /// Region duration in seconds at the given clock frequency.
    pub fn seconds(&self, frequency_ghz: f64) -> f64 {
        self.cycles as f64 / (frequency_ghz * 1e9)
    }
}

/// Metrics of a complete application run (the paper's "detailed simulation"
/// ground truth) or of a reconstructed run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    regions: Vec<RegionMetrics>,
    frequency_ghz: f64,
}

impl RunMetrics {
    /// Assembles run metrics from per-region metrics.
    pub fn new(regions: Vec<RegionMetrics>, frequency_ghz: f64) -> Self {
        Self { regions, frequency_ghz }
    }

    /// Per-region metrics, in program order.
    pub fn regions(&self) -> &[RegionMetrics] {
        &self.regions
    }

    /// Core clock frequency used to convert cycles to seconds.
    pub fn frequency_ghz(&self) -> f64 {
        self.frequency_ghz
    }

    /// Total wall-clock cycles of the parallel region of interest.
    pub fn total_cycles(&self) -> u64 {
        self.regions.iter().map(|r| r.cycles).sum()
    }

    /// Total instructions retired by all threads.
    pub fn total_instructions(&self) -> u64 {
        self.regions.iter().map(|r| r.instructions).sum()
    }

    /// Total DRAM accesses.
    pub fn total_dram_accesses(&self) -> u64 {
        self.regions.iter().map(|r| r.memory.dram_accesses).sum()
    }

    /// Application execution time in seconds.
    pub fn execution_time_seconds(&self) -> f64 {
        self.total_cycles() as f64 / (self.frequency_ghz * 1e9)
    }

    /// Whole-application aggregate IPC.
    pub fn aggregate_ipc(&self) -> f64 {
        let cycles = self.total_cycles();
        if cycles == 0 {
            0.0
        } else {
            self.total_instructions() as f64 / cycles as f64
        }
    }

    /// Whole-application DRAM accesses per thousand instructions.
    pub fn dram_apki(&self) -> f64 {
        let instructions = self.total_instructions();
        if instructions == 0 {
            0.0
        } else {
            self.total_dram_accesses() as f64 * 1000.0 / instructions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(region: usize, cycles: u64, instructions: u64, dram: u64) -> RegionMetrics {
        RegionMetrics {
            region,
            cycles,
            instructions,
            per_thread_cycles: vec![cycles],
            memory: MemoryStats { dram_accesses: dram, ..Default::default() },
        }
    }

    #[test]
    fn region_derived_metrics() {
        let r = region(0, 1000, 4000, 8);
        assert!((r.aggregate_ipc() - 4.0).abs() < 1e-12);
        assert!((r.cpi() - 0.25).abs() < 1e-12);
        assert!((r.dram_apki() - 2.0).abs() < 1e-12);
        assert!((r.seconds(2.0) - 5e-7).abs() < 1e-18);
    }

    #[test]
    fn run_totals_sum_regions() {
        let run = RunMetrics::new(vec![region(0, 100, 500, 1), region(1, 300, 900, 3)], 2.66);
        assert_eq!(run.total_cycles(), 400);
        assert_eq!(run.total_instructions(), 1400);
        assert_eq!(run.total_dram_accesses(), 4);
        assert!((run.aggregate_ipc() - 3.5).abs() < 1e-12);
        assert!(run.execution_time_seconds() > 0.0);
        assert!((run.dram_apki() - 4.0 / 1.4).abs() < 1e-12);
    }

    #[test]
    fn zero_division_is_safe() {
        let r = region(0, 0, 0, 0);
        assert_eq!(r.aggregate_ipc(), 0.0);
        assert_eq!(r.cpi(), 0.0);
        assert_eq!(r.dram_apki(), 0.0);
        let run = RunMetrics::new(vec![], 2.66);
        assert_eq!(run.aggregate_ipc(), 0.0);
        assert_eq!(run.dram_apki(), 0.0);
    }
}
