use bp_mem::MemoryConfig;
use serde::{Deserialize, Serialize};

/// Core microarchitecture parameters (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Core clock frequency in GHz.
    pub frequency_ghz: f64,
    /// Issue width (instructions retired per cycle at best).
    pub issue_width: u32,
    /// Reorder-buffer size; bounds how much memory latency can be hidden.
    pub rob_entries: u32,
    /// Memory-level parallelism: long-latency misses overlap by this factor.
    pub memory_level_parallelism: f64,
    /// Latency (cycles) below which a memory access is considered fully
    /// hidden by out-of-order execution.
    pub hidden_latency_cycles: u64,
    /// Branch misprediction penalty in cycles (Pentium M predictor, 8 cycles).
    pub branch_penalty_cycles: u64,
    /// Fraction of basic-block executions that suffer a branch misprediction.
    pub branch_miss_rate: f64,
}

impl CoreConfig {
    /// Table I core: 2.66 GHz, 4-wide, 128-entry ROB, 8-cycle branch penalty.
    pub fn table1() -> Self {
        Self {
            frequency_ghz: 2.66,
            issue_width: 4,
            rob_entries: 128,
            memory_level_parallelism: 2.0,
            hidden_latency_cycles: 8,
            branch_penalty_cycles: 8,
            branch_miss_rate: 0.02,
        }
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self::table1()
    }
}

/// Full simulated-machine configuration: cores plus memory hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of cores (== application threads).
    pub num_cores: usize,
    /// Core model parameters.
    pub core: CoreConfig,
    /// Memory hierarchy parameters.
    pub memory: MemoryConfig,
    /// Fixed cost of a global barrier, in cycles, plus a per-core component.
    pub barrier_base_cycles: u64,
    /// Additional barrier cost per participating core, in cycles.
    pub barrier_per_core_cycles: u64,
}

impl SimConfig {
    /// The paper's machine with Table I cache sizes and `num_cores` cores
    /// (8 = one socket, 32 = four sockets).
    pub fn table1(num_cores: usize) -> Self {
        Self {
            num_cores,
            core: CoreConfig::table1(),
            memory: MemoryConfig::table1(),
            barrier_base_cycles: 200,
            barrier_per_core_cycles: 20,
        }
    }

    /// The scaled-down hierarchy used by default in this reproduction (same
    /// topology and latencies as Table I, smaller capacities; see DESIGN.md).
    pub fn scaled(num_cores: usize) -> Self {
        Self { memory: MemoryConfig::scaled(), ..Self::table1(num_cores) }
    }

    /// A tiny machine for fast tests: pairs with workload scales around 0.05
    /// so that test working sets still exceed the LLC.
    pub fn tiny(num_cores: usize) -> Self {
        Self { memory: MemoryConfig::tiny(), ..Self::table1(num_cores) }
    }

    /// Returns a copy configured for a different core count.
    pub fn with_cores(mut self, num_cores: usize) -> Self {
        self.num_cores = num_cores;
        self
    }

    /// Seconds per core cycle.
    pub fn seconds_per_cycle(&self) -> f64 {
        1.0 / (self.core.frequency_ghz * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_machine_matches_paper() {
        let c = SimConfig::table1(32);
        assert_eq!(c.num_cores, 32);
        assert_eq!(c.core.issue_width, 4);
        assert_eq!(c.core.rob_entries, 128);
        assert!((c.core.frequency_ghz - 2.66).abs() < 1e-9);
        assert_eq!(c.memory.l3.size_bytes, 8 * 1024 * 1024);
    }

    #[test]
    fn scaled_keeps_core_model() {
        let c = SimConfig::scaled(8);
        assert_eq!(c.core, CoreConfig::table1());
        assert!(c.memory.l3.size_bytes < MemoryConfig::table1().l3.size_bytes);
    }

    #[test]
    fn seconds_per_cycle_is_inverse_frequency() {
        let c = SimConfig::table1(8);
        assert!((c.seconds_per_cycle() - 1.0 / 2.66e9).abs() < 1e-18);
    }
}
