//! Interval-style multi-core timing simulator for the BarrierPoint
//! reproduction — the stand-in for the Sniper 5.0 simulator used in the
//! paper's evaluation (Section V, Table I).
//!
//! The simulator executes `bp-workload` region traces against the `bp-mem`
//! cache hierarchy:
//!
//! * [`CoreModel`] — a 4-wide superscalar core approximation: instructions
//!   retire at the issue width and long-latency memory accesses add
//!   (partially overlappable) stall cycles,
//! * [`BarrierModel`] — OpenMP-style global barriers with passive waiting
//!   (idle threads consume no instructions), so a region's duration is the
//!   slowest thread's duration plus a small barrier cost,
//! * [`Machine`] — the full machine: it can run a complete application
//!   (producing per-region ground truth, [`RunMetrics`]) or a single
//!   inter-barrier region in isolation (the detailed simulation of one
//!   barrierpoint, [`RegionMetrics`]).
//!
//! Absolute cycle counts are not calibrated against Sniper; what matters for
//! the reproduction is that per-region performance depends on code mix,
//! working-set size, cache warmth and coherence traffic in the same way, so
//! that the sampling methodology faces the same estimation problem.
//!
//! # Example
//!
//! ```
//! use bp_sim::{Machine, SimConfig};
//! use bp_workload::{Benchmark, WorkloadConfig};
//!
//! let workload = Benchmark::NpbIs.build(&WorkloadConfig::new(4).with_scale(0.02));
//! let mut machine = Machine::new(&SimConfig::scaled(4));
//! let run = machine.run_full(&workload);
//! assert_eq!(run.regions().len(), 11);
//! assert!(run.total_cycles() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod barrier;
mod config;
mod core_model;
mod machine;
mod metrics;

pub use barrier::BarrierModel;
pub use config::{CoreConfig, SimConfig};
pub use core_model::CoreModel;
pub use machine::Machine;
pub use metrics::{RegionMetrics, RunMetrics};
