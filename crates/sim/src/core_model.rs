use crate::config::CoreConfig;
use bp_mem::{AccessResult, MemoryHierarchy};
use bp_workload::BlockExecution;

/// Base of the synthetic code address space used for instruction fetches.
const CODE_BASE: u64 = 0x7000_0000_0000;

/// An interval-style core timing model.
///
/// Rather than simulating individual pipeline stages, the model accounts for
/// the two first-order effects the paper's evaluation depends on:
///
/// * instructions retire at the issue width (the "base" interval), and
/// * memory accesses whose latency exceeds what out-of-order execution can
///   hide add stall cycles, divided by the configured memory-level
///   parallelism, plus a small fixed branch misprediction cost per block.
///
/// The model is deterministic and stateless apart from its accumulated cycle
/// count, so a region's cost depends only on its instruction mix and on the
/// state of the shared memory hierarchy.
#[derive(Debug, Clone)]
pub struct CoreModel {
    config: CoreConfig,
    core_id: usize,
    cycles: f64,
    instructions: u64,
    /// Residual fractional branch mispredictions (deterministic accumulator).
    branch_accumulator: f64,
}

impl CoreModel {
    /// Creates a core model for core `core_id`.
    pub fn new(config: &CoreConfig, core_id: usize) -> Self {
        Self { config: *config, core_id, cycles: 0.0, instructions: 0, branch_accumulator: 0.0 }
    }

    /// The core this model simulates.
    pub fn core_id(&self) -> usize {
        self.core_id
    }

    /// Cycles accumulated so far (rounded up).
    pub fn cycles(&self) -> u64 {
        self.cycles.ceil() as u64
    }

    /// Instructions retired so far.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Resets the accumulated cycle and instruction counts.
    pub fn reset(&mut self) {
        self.cycles = 0.0;
        self.instructions = 0;
        self.branch_accumulator = 0.0;
    }

    /// Executes one basic-block execution, issuing its instruction fetch and
    /// memory accesses to `hierarchy` and accumulating the cycle cost.
    pub fn execute_block(&mut self, exec: &BlockExecution, hierarchy: &mut MemoryHierarchy) {
        // Instruction fetch for the block (one line per static block).
        let fetch_addr = CODE_BASE + exec.block.index() as u64 * 64;
        let fetch = hierarchy.fetch_instruction(self.core_id, fetch_addr);
        self.cycles += self.stall_cycles(&fetch);

        // Base cost: retire at the issue width.
        self.cycles += f64::from(exec.instructions) / f64::from(self.config.issue_width);
        self.instructions += u64::from(exec.instructions);

        // Deterministic branch misprediction cost (one conditional branch per
        // block execution on average).
        self.branch_accumulator += self.config.branch_miss_rate;
        if self.branch_accumulator >= 1.0 {
            self.branch_accumulator -= 1.0;
            self.cycles += self.config.branch_penalty_cycles as f64;
        }

        // Memory accesses.
        for access in &exec.accesses {
            let result = hierarchy.access(self.core_id, access.addr, access.kind.is_write());
            self.cycles += self.stall_cycles(&result);
        }
    }

    /// Stall cycles contributed by one memory access: latency beyond what the
    /// out-of-order window hides, divided by the memory-level parallelism.
    fn stall_cycles(&self, result: &AccessResult) -> f64 {
        let exposed = result.latency.saturating_sub(self.config.hidden_latency_cycles);
        exposed as f64 / self.config.memory_level_parallelism.max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_mem::MemoryConfig;
    use bp_workload::{BasicBlockId, MemoryAccess};

    fn block(instr: u32, addrs: &[u64]) -> BlockExecution {
        BlockExecution {
            block: BasicBlockId(0),
            instructions: instr,
            accesses: addrs.iter().map(|&a| MemoryAccess::read(a, 8)).collect(),
        }
    }

    #[test]
    fn compute_only_blocks_retire_at_issue_width() {
        let mut hierarchy = MemoryHierarchy::new(&MemoryConfig::scaled(), 1);
        let mut core = CoreModel::new(&CoreConfig::table1(), 0);
        // Warm the instruction line so the fetch is free on the second call.
        core.execute_block(&block(400, &[]), &mut hierarchy);
        let before = core.cycles();
        core.execute_block(&block(400, &[]), &mut hierarchy);
        let delta = core.cycles() - before;
        // 400 instructions / 4-wide = 100 cycles (plus at most a branch penalty).
        assert!((100..=110).contains(&delta), "delta = {delta}");
        assert_eq!(core.instructions(), 800);
    }

    #[test]
    fn cache_misses_add_stalls() {
        let mut hierarchy = MemoryHierarchy::new(&MemoryConfig::scaled(), 1);
        let mut cold = CoreModel::new(&CoreConfig::table1(), 0);
        cold.execute_block(&block(40, &[0x10000, 0x20000, 0x30000]), &mut hierarchy);
        let cold_cycles = cold.cycles();

        let mut warm = CoreModel::new(&CoreConfig::table1(), 0);
        warm.execute_block(&block(40, &[0x10000, 0x20000, 0x30000]), &mut hierarchy);
        let warm_cycles = warm.cycles();
        assert!(cold_cycles > warm_cycles * 2, "{cold_cycles} vs {warm_cycles}");
    }

    #[test]
    fn reset_clears_counters() {
        let mut hierarchy = MemoryHierarchy::new(&MemoryConfig::scaled(), 1);
        let mut core = CoreModel::new(&CoreConfig::table1(), 0);
        core.execute_block(&block(10, &[0x100]), &mut hierarchy);
        assert!(core.cycles() > 0);
        core.reset();
        assert_eq!(core.cycles(), 0);
        assert_eq!(core.instructions(), 0);
    }
}
