//! Property-based tests of the workload models' structural invariants.

use bp_workload::{Benchmark, Workload, WorkloadConfig, CACHE_LINE_BYTES};
use proptest::prelude::*;

fn any_benchmark() -> impl Strategy<Value = Benchmark> {
    proptest::sample::select(Benchmark::all().to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Region traces are deterministic: two walks of the same (region, thread)
    /// yield identical block and access streams.
    #[test]
    fn traces_are_reproducible(
        bench in any_benchmark(),
        threads in prop_oneof![Just(2usize), Just(4usize)],
        seed in any::<u32>(),
    ) {
        let config = WorkloadConfig::new(threads).with_scale(0.02).with_seed(u64::from(seed));
        let w = bench.build(&config);
        let region = w.num_regions() / 2;
        let a: Vec<_> = w.region_trace(region, threads - 1).collect();
        let b: Vec<_> = w.region_trace(region, threads - 1).collect();
        prop_assert_eq!(a, b);
    }

    /// Every block execution retires at least one instruction and references
    /// only blocks present in the static block table; accesses are non-empty
    /// addresses aligned within the declared address space.
    #[test]
    fn block_executions_are_well_formed(
        bench in any_benchmark(),
        thread in 0usize..4,
    ) {
        let w = bench.build(&WorkloadConfig::new(4).with_scale(0.02));
        let table_len = w.block_table().len();
        let region = w.num_regions() - 1;
        for exec in w.region_trace(region, thread) {
            prop_assert!(exec.instructions >= 1);
            prop_assert!(exec.block.index() < table_len);
            prop_assert!(exec.accesses.len() as u32 <= exec.instructions);
            for access in &exec.accesses {
                prop_assert!(access.addr > 0);
                prop_assert_eq!(access.line(), access.addr / CACHE_LINE_BYTES);
            }
        }
    }

    /// The total amount of work (aggregate instructions over all threads) is
    /// approximately thread-count invariant for data-parallel benchmarks:
    /// running with more threads splits the same work, it does not add work.
    #[test]
    fn aggregate_work_is_roughly_thread_invariant(bench in any_benchmark()) {
        let region_fraction = 0.1f64;
        let total = |threads: usize| -> u64 {
            let w = bench.build(&WorkloadConfig::new(threads).with_scale(0.05));
            let regions = ((w.num_regions() as f64 * region_fraction) as usize).max(3);
            (0..regions)
                .map(|r| {
                    (0..threads)
                        .map(|t| w.region_trace(r, t).map(|e| u64::from(e.instructions)).sum::<u64>())
                        .sum::<u64>()
                })
                .sum()
        };
        let with_2 = total(2) as f64;
        let with_8 = total(8) as f64;
        // Rounding of per-thread iteration counts introduces some slack.
        prop_assert!(with_8 / with_2 < 2.0 && with_2 / with_8 < 2.0,
            "2 threads: {with_2}, 8 threads: {with_8}");
    }

    /// Scaling down a workload never increases its per-region work.
    #[test]
    fn scale_shrinks_work(bench in any_benchmark()) {
        let big = bench.build(&WorkloadConfig::new(4).with_scale(0.2));
        let small = bench.build(&WorkloadConfig::new(4).with_scale(0.02));
        let region = big.num_regions() / 3;
        let work = |w: &dyn Workload| -> u64 {
            w.region_trace(region, 0).map(|e| u64::from(e.instructions)).sum()
        };
        prop_assert!(work(&small) <= work(&big));
    }
}
