//! The trace-observer abstraction: one trace walk, many consumers.
//!
//! Every analysis BarrierPoint runs over a workload — signature profiling,
//! MRU warmup collection, and anything added later — is a per-thread
//! reduction over the same deterministic block-execution stream.  Before
//! this abstraction each consumer re-walked [`RegionTrace`] with its own
//! ad-hoc loop, so a cold pipeline *generated* every trace once per
//! consumer.  [`TraceObserver`] inverts that: consumers become observers,
//! and [`drive`] walks one thread's full trace exactly once, fanning each
//! block execution out to every attached observer.
//!
//! The walk is region-ordered (`enter_region`, the region's block
//! executions via `observe`, `finish_region`, for regions `0, 1, …`), which
//! is the program order a real profiler sees — reuse-distance trackers and
//! MRU recency state stay continuous across region boundaries.  An observer
//! that has seen everything it needs can return `false` from
//! [`TraceObserver::wants_more`]; once *every* observer is done, [`drive`]
//! stops without generating the remaining regions, so a bounded consumer
//! (e.g. warmup collection up to its last barrierpoint) pays exactly the
//! prefix it consumes.
//!
//! Because every barrier is a natural cut point of the fold, observers that
//! implement [`CheckpointObserver`] (serialize/restore their carried state
//! at a region boundary) can be driven over disjoint *segments* of one
//! thread's trace via [`drive_segment`] — the seam that lets a scheduler
//! split a single thread's walk into `segments` parallel jobs.
//!
//! [`RegionTrace`]: crate::RegionTrace

use crate::region::BlockExecution;
use crate::workload::Workload;

/// A consumer of one thread's block-execution stream.
///
/// Implementations hold whatever per-thread state their analysis needs
/// (a reuse-distance tracker, an MRU recency list, …) and receive the
/// stream in program order from [`drive`].  Because observers never see
/// scheduling — only the deterministic stream — any set of observers
/// driven together produces bit-identical results to each observer driven
/// alone.
pub trait TraceObserver {
    /// Called before the block executions of `region` (regions arrive in
    /// program order starting at 0).  A natural place to snapshot state
    /// "as of the barrier before `region`".
    fn enter_region(&mut self, region: usize) {
        let _ = region;
    }

    /// One block execution of the driven thread, in program order.
    fn observe(&mut self, thread: usize, exec: &BlockExecution);

    /// Called after the last block execution of `region`.
    fn finish_region(&mut self, region: usize) {
        let _ = region;
    }

    /// Whether this observer still needs to see block executions.  When
    /// every observer of a [`drive`] call returns `false`, the walk stops
    /// early (the current region's trace is not generated).  Defaults to
    /// `true` — observe the whole trace.
    fn wants_more(&self) -> bool {
        true
    }
}

/// A [`TraceObserver`] whose state is checkpointable at region boundaries.
///
/// A trace walk is a fold over the block-execution stream, and every
/// barrier is a natural cut point: an observer that can serialize its
/// resumable state *as of the barrier before region `r`* — and later
/// restore it into a freshly constructed instance — lets [`drive_segment`]
/// walk disjoint region ranges of one thread's trace on different workers,
/// bit-identically to one sequential [`drive`].  That is what turns a
/// few-thread many-region workload from `threads` jobs into
/// `threads × segments` jobs on a worker budget.
///
/// The contract:
///
/// * `snapshot_at(region)` is called after the observer finished region
///   `region - 1` (i.e. [`drive_segment`] ran up to `until_region ==
///   region`).  The returned bytes must capture everything a continuation
///   from region `region` needs — *not* the per-region outputs already
///   produced, only the carried state (reuse-distance trackers, recency
///   lists, …).
/// * `restore(region, bytes)` is called on a freshly constructed observer
///   and must leave it in exactly the state `snapshot_at(region)` captured,
///   so that driving it over regions `region..` continues the sequential
///   fold bit for bit.
/// * Checkpoint bytes must be deterministic: two walks over the same trace
///   snapshot identical bytes (sort any hash-ordered state).
pub trait CheckpointObserver: TraceObserver {
    /// Serializes the resumable state as of the barrier before `region`
    /// (all accesses of regions `0..region` applied).
    fn snapshot_at(&self, region: usize) -> Vec<u8>;

    /// Restores state previously captured by [`snapshot_at`] with the same
    /// `region`, preparing this (freshly constructed) observer to continue
    /// the walk from `region`.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] when the bytes are truncated, corrupt,
    /// or incompatible with this observer's configuration.
    ///
    /// [`snapshot_at`]: CheckpointObserver::snapshot_at
    fn restore(&mut self, region: usize, bytes: &[u8]) -> Result<(), CheckpointError>;
}

/// A checkpoint payload could not be restored (truncated, corrupt, or
/// incompatible with the observer it was handed to).
///
/// Restoration failures are recoverable by construction: the caller falls
/// back to walking the segment's prefix sequentially (or the whole trace),
/// which needs no checkpoint at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointError {
    message: String,
}

impl CheckpointError {
    /// Creates an error carrying a human-readable reason.
    pub fn new(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "checkpoint restore failed: {}", self.message)
    }
}

impl std::error::Error for CheckpointError {}

/// Walks `thread`'s entire trace of `workload` — all regions, in program
/// order — exactly once, feeding every block execution to each observer.
///
/// For each region the walker calls `enter_region` on every observer,
/// generates the region's [`RegionTrace`](crate::RegionTrace) (unless every
/// observer already reported `wants_more() == false`, in which case the
/// generation is skipped), feeds each execution to every observer's
/// `observe`, then calls `finish_region`.  `enter_region`/`finish_region`
/// stay paired for every region entered, including the final one of an
/// early stop.
///
/// # Panics
///
/// Panics if `thread >= workload.num_threads()`.
pub fn drive<W: Workload + ?Sized>(
    workload: &W,
    thread: usize,
    observers: &mut [&mut dyn TraceObserver],
) {
    drive_segment(workload, thread, 0, workload.num_regions(), observers);
}

/// Walks one *segment* of `thread`'s trace: regions `from_region` up to
/// (but excluding) `until_region`, clamped to the workload's region count,
/// with exactly [`drive`]'s per-region protocol — `drive(w, t, obs)` is
/// `drive_segment(w, t, 0, w.num_regions(), obs)`.
///
/// Observers entering mid-trace (`from_region > 0`) are expected to have
/// been [restored](CheckpointObserver::restore) from a checkpoint taken at
/// `from_region`; chaining `drive_segment` calls over consecutive ranges
/// with the *same* observers is bit-identical to one sequential [`drive`]
/// (the per-region protocol is identical, so the fold composes).
///
/// # Panics
///
/// Panics if `thread >= workload.num_threads()` or
/// `from_region > until_region`.
pub fn drive_segment<W: Workload + ?Sized>(
    workload: &W,
    thread: usize,
    from_region: usize,
    until_region: usize,
    observers: &mut [&mut dyn TraceObserver],
) {
    assert!(thread < workload.num_threads(), "thread {thread} out of range");
    assert!(
        from_region <= until_region,
        "segment start {from_region} past segment end {until_region}"
    );
    for region in from_region..until_region.min(workload.num_regions()) {
        for observer in observers.iter_mut() {
            observer.enter_region(region);
        }
        let active = observers.iter().any(|observer| observer.wants_more());
        if active {
            for exec in workload.region_trace(region, thread) {
                for observer in observers.iter_mut() {
                    observer.observe(thread, &exec);
                }
            }
        }
        for observer in observers.iter_mut() {
            observer.finish_region(region);
        }
        if !active {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::suite::Benchmark;
    use crate::workload::WorkloadConfig;

    /// Records the full event stream for comparison against manual walks.
    #[derive(Default)]
    struct Recorder {
        events: Vec<String>,
        instructions: u64,
        stop_after_region: Option<usize>,
        finished: Vec<usize>,
    }

    impl TraceObserver for Recorder {
        fn enter_region(&mut self, region: usize) {
            self.events.push(format!("enter {region}"));
        }

        fn observe(&mut self, _thread: usize, exec: &BlockExecution) {
            self.instructions += u64::from(exec.instructions);
        }

        fn finish_region(&mut self, region: usize) {
            self.events.push(format!("finish {region}"));
            self.finished.push(region);
        }

        fn wants_more(&self) -> bool {
            match self.stop_after_region {
                Some(limit) => self.finished.last().is_none_or(|&r| r < limit),
                None => true,
            }
        }
    }

    fn workload() -> impl Workload {
        Benchmark::NpbIs.build(&WorkloadConfig::new(2).with_scale(0.02))
    }

    #[test]
    fn drive_visits_every_region_in_order() {
        let w = workload();
        let mut recorder = Recorder::default();
        drive(&w, 0, &mut [&mut recorder]);
        let direct: u64 = (0..w.num_regions())
            .map(|r| w.region_trace(r, 0).map(|e| u64::from(e.instructions)).sum::<u64>())
            .sum();
        assert_eq!(recorder.instructions, direct);
        let expected: Vec<String> = (0..w.num_regions())
            .flat_map(|r| [format!("enter {r}"), format!("finish {r}")])
            .collect();
        assert_eq!(recorder.events, expected);
    }

    #[test]
    fn drive_fans_one_generation_out_to_all_observers() {
        let w = workload();
        let mut a = Recorder::default();
        let mut b = Recorder::default();
        drive(&w, 1, &mut [&mut a, &mut b]);
        assert_eq!(a.instructions, b.instructions);
        assert_eq!(a.events, b.events);
        assert!(a.instructions > 0);
    }

    #[test]
    fn drive_stops_when_no_observer_wants_more() {
        let w = workload();
        let mut bounded = Recorder { stop_after_region: Some(2), ..Default::default() };
        drive(&w, 0, &mut [&mut bounded]);
        // Regions 0..=2 are walked; region 3's trace is skipped but its
        // enter/finish pair still fires before the stop.
        let walked: u64 = (0..3)
            .map(|r| w.region_trace(r, 0).map(|e| u64::from(e.instructions)).sum::<u64>())
            .sum();
        assert_eq!(bounded.instructions, walked);
        assert_eq!(bounded.finished, vec![0, 1, 2, 3]);
    }

    #[test]
    fn a_full_observer_keeps_a_bounded_one_fed() {
        // A bounded observer riding with an unbounded one sees exactly the
        // same stream it would alone, because it simply ignores the tail.
        let w = workload();
        let mut alone = Recorder { stop_after_region: Some(1), ..Default::default() };
        drive(&w, 0, &mut [&mut alone]);
        let mut riding = Recorder { stop_after_region: Some(1), ..Default::default() };
        let mut full = Recorder::default();
        drive(&w, 0, &mut [&mut riding, &mut full]);
        // The riding observer observes more regions (the walk continues for
        // the full observer) but its own early events match.
        assert_eq!(full.finished.len(), w.num_regions());
        assert!(riding.instructions >= alone.instructions);
    }

    #[test]
    #[should_panic]
    fn drive_rejects_out_of_range_thread() {
        let w = workload();
        drive(&w, 99, &mut []);
    }

    #[test]
    #[should_panic]
    fn drive_segment_rejects_inverted_range() {
        let w = workload();
        let mut recorder = Recorder::default();
        drive_segment(&w, 0, 3, 1, &mut [&mut recorder]);
    }

    #[test]
    fn chained_segments_reproduce_a_sequential_drive() {
        let w = workload();
        let n = w.num_regions();
        let mut sequential = Recorder::default();
        drive(&w, 0, &mut [&mut sequential]);
        for cut in [0, 1, n / 2, n - 1, n, n + 5] {
            let mut chained = Recorder::default();
            drive_segment(&w, 0, 0, cut, &mut [&mut chained]);
            drive_segment(&w, 0, cut.min(n), n, &mut [&mut chained]);
            assert_eq!(chained.events, sequential.events, "cut {cut}");
            assert_eq!(chained.instructions, sequential.instructions, "cut {cut}");
        }
    }

    #[test]
    fn segment_past_the_region_count_is_clamped() {
        let w = workload();
        let mut recorder = Recorder::default();
        drive_segment(&w, 0, w.num_regions() + 3, w.num_regions() + 9, &mut [&mut recorder]);
        assert!(recorder.events.is_empty());
        assert_eq!(recorder.instructions, 0);
    }

    #[test]
    fn checkpoint_error_displays_its_reason() {
        let err = CheckpointError::new("bad magic");
        assert_eq!(err.to_string(), "checkpoint restore failed: bad magic");
    }
}
