use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a static basic block within a workload.
///
/// Basic block ids index into the workload's [`BlockTable`] and into the
/// basic block vectors collected by `bp-signature`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BasicBlockId(pub u32);

impl BasicBlockId {
    /// Returns the id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BasicBlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// Static description of a basic block.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BasicBlock {
    /// Identifier of the block.
    pub id: BasicBlockId,
    /// Human-readable name, e.g. `"cg.matvec.inner"`.
    pub name: String,
    /// Number of instructions a single execution of the block retires
    /// (including its memory operations).
    pub instructions: u32,
}

/// The static basic block table of a workload.
///
/// The table defines the dimensionality of basic block vectors: BBVs have one
/// entry per block in this table.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockTable {
    blocks: Vec<BasicBlock>,
}

impl BlockTable {
    /// Creates an empty block table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new basic block and returns its id.
    pub fn add(&mut self, name: impl Into<String>, instructions: u32) -> BasicBlockId {
        let id = BasicBlockId(self.blocks.len() as u32);
        self.blocks.push(BasicBlock { id, name: name.into(), instructions });
        id
    }

    /// Number of static basic blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Returns `true` when no blocks have been registered.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Looks up a block by id.
    pub fn get(&self, id: BasicBlockId) -> Option<&BasicBlock> {
        self.blocks.get(id.index())
    }

    /// Iterates over all blocks in id order.
    pub fn iter(&self) -> impl Iterator<Item = &BasicBlock> {
        self.blocks.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assigns_sequential_ids() {
        let mut table = BlockTable::new();
        let a = table.add("a", 10);
        let b = table.add("b", 20);
        assert_eq!(a, BasicBlockId(0));
        assert_eq!(b, BasicBlockId(1));
        assert_eq!(table.len(), 2);
        assert_eq!(table.get(a).unwrap().instructions, 10);
        assert_eq!(table.get(b).unwrap().name, "b");
    }

    #[test]
    fn get_out_of_range_is_none() {
        let table = BlockTable::new();
        assert!(table.is_empty());
        assert!(table.get(BasicBlockId(3)).is_none());
    }

    #[test]
    fn display_format() {
        assert_eq!(BasicBlockId(7).to_string(), "bb7");
    }
}
