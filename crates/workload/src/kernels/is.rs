//! Model of NPB IS (integer bucket sort), class-A-like structure.
//!
//! IS performs 10 ranking iterations plus a final full sort / verification:
//! 11 dynamic barriers, matching Figure 1.  In the paper nearly every IS
//! region becomes its own barrierpoint (Table III lists 10 barrierpoints with
//! multiplier 1.0 each); the key distribution shifts every iteration, so the
//! data signature of each region is distinct even though the code is
//! identical.  The model reproduces this by giving every ranking iteration a
//! progressively larger randomly-accessed key working set.

use super::KB;
use crate::phase::AccessPattern;
use crate::synthetic::{SyntheticWorkload, SyntheticWorkloadBuilder};
use crate::workload::WorkloadConfig;

/// Builds the `npb-is` workload model.
pub fn build(config: &WorkloadConfig) -> SyntheticWorkload {
    let mut b = SyntheticWorkloadBuilder::new("npb-is", *config);

    let mut rank_phases = Vec::new();
    for iter in 0..10u64 {
        // The randomly-touched portion of the key space grows each iteration,
        // and the bucket histogram shifts; both change the LDV from region to
        // region while the BBV stays identical.
        let key_bytes = 96 * KB + iter * 48 * KB;
        let phase = b
            .phase(format!("rank_{iter}"), 1024, true)
            .pattern(AccessPattern::SharedStream {
                id: 0,
                bytes: 512 * KB,
                stride: 64,
                write_fraction: 0.0,
                chunked: true,
            })
            .pattern(AccessPattern::SharedRandom { id: 1, bytes: key_bytes, write_fraction: 0.5 })
            .pattern(AccessPattern::ReduceShared { id: 2, bytes: 16 * KB })
            .block(format!("is.rank{iter}.readkeys"), 6, 4, 0)
            .block(format!("is.rank{iter}.bucket"), 8, 6, 1)
            .block(format!("is.rank{iter}.hist"), 4, 2, 2)
            .finish();
        rank_phases.push(phase);
    }

    let full_sort = b
        .phase("full_verify", 2048, true)
        .pattern(AccessPattern::SharedRandom { id: 1, bytes: 512 * KB, write_fraction: 0.5 })
        .pattern(AccessPattern::SharedStream {
            id: 0,
            bytes: 512 * KB,
            stride: 64,
            write_fraction: 0.2,
            chunked: true,
        })
        .block("is.verify.permute", 10, 6, 0)
        .block("is.verify.scan", 6, 4, 1)
        .finish();

    for phase in rank_phases {
        b.schedule_one(phase);
    }
    b.schedule_one(full_sort);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workload;

    #[test]
    fn has_11_barriers() {
        let w = build(&WorkloadConfig::new(8).with_scale(0.1));
        assert_eq!(w.num_regions(), 11);
        assert_eq!(w.name(), "npb-is");
    }

    #[test]
    fn ranking_regions_have_distinct_phases() {
        let w = build(&WorkloadConfig::new(8).with_scale(0.1));
        assert_eq!(w.region_phase_name(0), "rank_0");
        assert_eq!(w.region_phase_name(9), "rank_9");
        assert_eq!(w.region_phase_name(10), "full_verify");
    }
}
