//! Model of NPB MG (multigrid V-cycle), class-A-like structure.
//!
//! MG performs a small number of V-cycles over a hierarchy of grids; the
//! per-level working set shrinks by roughly 8x per level, which gives the
//! widest spread of data signatures of any NPB code.  Five setup regions plus
//! 8 V-cycles of 30 barrier-separated regions give `5 + 8 * 30 = 245` dynamic
//! barriers, matching Figure 1.

use super::{KB, MB};
use crate::phase::{AccessPattern, PhaseId};
use crate::synthetic::{SyntheticWorkload, SyntheticWorkloadBuilder};
use crate::workload::WorkloadConfig;

/// Grid working-set size in bytes at each multigrid level (level 0 is finest).
const LEVEL_BYTES: [u64; 4] = [MB, 128 * KB, 16 * KB, 4 * KB];

/// Builds the `npb-mg` workload model.
pub fn build(config: &WorkloadConfig) -> SyntheticWorkload {
    let mut b = SyntheticWorkloadBuilder::new("npb-mg", *config);

    let mut smooth = Vec::with_capacity(4);
    let mut resid = Vec::with_capacity(4);
    let mut restrict = Vec::with_capacity(4);
    let mut prolong = Vec::with_capacity(4);

    for (level, &bytes) in LEVEL_BYTES.iter().enumerate() {
        // Coarser levels have ~8x less work per sweep (a 3-D grid halves in
        // every dimension per level), so the finest level dominates the
        // V-cycle — as in the real benchmark.
        let iters = (1024u64 >> (3 * level)).max(8);
        let plane = (bytes / 96).max(512);
        let id = level as u32;

        smooth.push(
            b.phase(format!("psinv_{level}"), iters, true)
                .pattern(AccessPattern::Stencil { id, bytes, plane, write_fraction: 0.4 })
                .block(format!("mg.psinv{level}.stencil"), 40, 9, 0)
                .finish(),
        );
        resid.push(
            b.phase(format!("resid_{level}"), iters, true)
                .pattern(AccessPattern::Stencil { id, bytes, plane, write_fraction: 0.3 })
                .block(format!("mg.resid{level}.stencil"), 46, 9, 0)
                .finish(),
        );
        restrict.push(
            b.phase(format!("rprj3_{level}"), iters / 2, true)
                .pattern(AccessPattern::SharedStream {
                    id,
                    bytes,
                    stride: 128,
                    write_fraction: 0.0,
                    chunked: true,
                })
                .pattern(AccessPattern::SharedStream {
                    id: id + 10,
                    bytes: (bytes / 8).max(4 * KB),
                    stride: 64,
                    write_fraction: 0.9,
                    chunked: true,
                })
                .block(format!("mg.rprj3{level}.read"), 20, 6, 0)
                .block(format!("mg.rprj3{level}.write"), 12, 3, 1)
                .finish(),
        );
        prolong.push(
            b.phase(format!("interp_{level}"), iters / 2, true)
                .pattern(AccessPattern::SharedStream {
                    id: id + 10,
                    bytes: (bytes / 8).max(4 * KB),
                    stride: 64,
                    write_fraction: 0.0,
                    chunked: true,
                })
                .pattern(AccessPattern::SharedStream {
                    id,
                    bytes,
                    stride: 64,
                    write_fraction: 0.7,
                    chunked: true,
                })
                .block(format!("mg.interp{level}.read"), 16, 4, 0)
                .block(format!("mg.interp{level}.write"), 18, 5, 1)
                .finish(),
        );
    }

    let norm = b
        .phase("norm2u3", 256, true)
        .pattern(AccessPattern::SharedStream {
            id: 0,
            bytes: MB,
            stride: 64,
            write_fraction: 0.0,
            chunked: true,
        })
        .pattern(AccessPattern::ReduceShared { id: 20, bytes: 2 * KB })
        .block("mg.norm.sum", 12, 4, 0)
        .block("mg.norm.accum", 6, 2, 1)
        .finish();

    let init = b
        .phase("zran3", 512, true)
        .pattern(AccessPattern::SharedRandom { id: 0, bytes: MB, write_fraction: 0.8 })
        .block("mg.zran3.scatter", 34, 5, 0)
        .finish();

    let comm = b
        .phase("comm3", 128, true)
        .pattern(AccessPattern::SharedStream {
            id: 0,
            bytes: MB,
            stride: 4 * KB,
            write_fraction: 0.5,
            chunked: false,
        })
        .block("mg.comm3.halo", 10, 6, 0)
        .finish();

    // Five setup regions.
    b.schedule_one(init);
    b.schedule_one(norm);
    b.schedule_one(resid[0]);
    b.schedule_one(norm);
    b.schedule_one(comm);

    // Eight V-cycles of exactly 30 regions each.
    let mut cycle: Vec<PhaseId> = Vec::with_capacity(30);
    for l in 0..4 {
        cycle.extend_from_slice(&[smooth[l], resid[l], restrict[l]]);
    }
    cycle.extend_from_slice(&[smooth[3], resid[3]]);
    for l in (0..4).rev() {
        cycle.extend_from_slice(&[prolong[l], smooth[l], resid[l]]);
    }
    cycle.extend_from_slice(&[comm, norm, comm, norm]);
    assert_eq!(cycle.len(), 30, "V-cycle must contain exactly 30 regions");
    b.schedule_cycle(&cycle, 8);

    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workload;

    #[test]
    fn has_245_barriers() {
        let w = build(&WorkloadConfig::new(8).with_scale(0.05));
        assert_eq!(w.num_regions(), 245);
        assert_eq!(w.name(), "npb-mg");
    }

    #[test]
    fn coarse_levels_do_less_work() {
        let w = build(&WorkloadConfig::new(8).with_scale(0.2));
        // Region 5 is psinv_0 (finest); region 14 is psinv_3 (coarsest) within
        // the first V-cycle: 5 + [s0 r0 R0 s1 r1 R1 s2 r2 R2 s3 ...].
        assert_eq!(w.region_phase_name(5), "psinv_0");
        assert_eq!(w.region_phase_name(14), "psinv_3");
        let fine: u64 = w.region_trace(5, 0).map(|e| u64::from(e.instructions)).sum();
        let coarse: u64 = w.region_trace(14, 0).map(|e| u64::from(e.instructions)).sum();
        assert!(fine > coarse, "fine level {fine} should exceed coarse level {coarse}");
    }
}
