//! Benchmark models of the workloads evaluated in the BarrierPoint paper.
//!
//! Each module builds a [`crate::SyntheticWorkload`] whose dynamic barrier
//! count matches Figure 1 / Table III of the paper and whose phase structure
//! follows the real benchmark's algorithm (iterative solver phases, multigrid
//! levels, bucket sort passes, …).  Working-set sizes are scaled to the
//! crate's scaled-down cache hierarchy (see `bp-mem`); the *relative*
//! relationships (private vs shared, streaming vs random, per-level working
//! sets) follow the original kernels.

pub mod bodytrack;
pub mod bt;
pub mod cg;
pub mod ft;
pub mod is;
pub mod lu;
pub mod mg;
pub mod sp;
pub mod suite;

/// One kibibyte, for readable working-set sizes.
pub(crate) const KB: u64 = 1024;
/// One mebibyte, for readable working-set sizes.
pub(crate) const MB: u64 = 1024 * 1024;

#[cfg(test)]
mod tests {
    use crate::{Benchmark, Workload, WorkloadConfig};

    /// Barrier counts must match Figure 1 / Table III of the paper and must
    /// not depend on the thread count.
    #[test]
    fn barrier_counts_match_paper() {
        for &(bench, expected) in &[
            (Benchmark::NpbBt, 1001),
            (Benchmark::NpbCg, 46),
            (Benchmark::NpbFt, 34),
            (Benchmark::NpbIs, 11),
            (Benchmark::NpbLu, 503),
            (Benchmark::NpbMg, 245),
            (Benchmark::NpbSp, 3601),
            (Benchmark::ParsecBodytrack, 89),
        ] {
            for threads in [8, 32] {
                let w = bench.build(&WorkloadConfig::new(threads).with_scale(0.05));
                assert_eq!(w.num_regions(), expected, "{} at {} threads", bench.name(), threads);
                assert_eq!(w.num_regions(), bench.paper_barrier_count());
            }
        }
    }

    /// Every region of every benchmark must yield a non-empty trace for every
    /// thread (all threads reach the barrier having done some work).
    #[test]
    fn all_regions_have_work_for_all_threads() {
        for &bench in Benchmark::all() {
            let w = bench.build(&WorkloadConfig::new(8).with_scale(0.02));
            let regions = w.num_regions();
            // Spot-check a handful of regions spread over the schedule.
            for region in [0, 1, regions / 2, regions - 1] {
                for thread in [0, 7] {
                    let count = w.region_trace(region, thread).count();
                    assert!(
                        count > 0,
                        "{} region {} thread {} is empty",
                        bench.name(),
                        region,
                        thread
                    );
                }
            }
        }
    }
}
