//! Model of PARSEC bodytrack (particle-filter body tracker), simlarge-like
//! structure.
//!
//! Bodytrack processes a sequence of frames; each frame runs image-processing
//! stages (gradient / edge maps over the camera images) followed by several
//! annealing layers of particle weight evaluation and resampling, all
//! OpenMP-barrier separated.  One global setup region plus 8 frames of 11
//! stages give `1 + 8 * 11 = 89` dynamic barriers, matching Figure 1.
//!
//! Unlike the NPB codes, the per-thread work is less regular (particles are
//! distributed dynamically), which the model reflects with random-access
//! particle state and a larger fraction of thread-private data.

use super::KB;
use crate::phase::AccessPattern;
use crate::synthetic::{SyntheticWorkload, SyntheticWorkloadBuilder};
use crate::workload::WorkloadConfig;

/// Builds the `parsec-bodytrack` workload model.
pub fn build(config: &WorkloadConfig) -> SyntheticWorkload {
    let mut b = SyntheticWorkloadBuilder::new("parsec-bodytrack", *config);

    let setup = b
        .phase("load_model", 384, true)
        .pattern(AccessPattern::SharedStream {
            id: 0,
            bytes: 512 * KB,
            stride: 64,
            write_fraction: 0.9,
            chunked: true,
        })
        .block("bodytrack.setup.loadimage", 26, 6, 0)
        .finish();

    let gradient = b
        .phase("image_gradient", 512, true)
        .pattern(AccessPattern::Stencil {
            id: 0,
            bytes: 512 * KB,
            plane: 2 * KB,
            write_fraction: 0.0,
        })
        .pattern(AccessPattern::SharedStream {
            id: 1,
            bytes: 512 * KB,
            stride: 64,
            write_fraction: 0.95,
            chunked: true,
        })
        .block("bodytrack.gradient.sobel", 38, 6, 0)
        .block("bodytrack.gradient.store", 10, 3, 1)
        .finish();

    let edge_x = b
        .phase("edge_filter_x", 448, true)
        .pattern(AccessPattern::SharedStream {
            id: 1,
            bytes: 512 * KB,
            stride: 64,
            write_fraction: 0.4,
            chunked: true,
        })
        .block("bodytrack.edgex.convolve", 44, 7, 0)
        .finish();

    let edge_y = b
        .phase("edge_filter_y", 448, true)
        .pattern(AccessPattern::SharedStream {
            id: 1,
            bytes: 512 * KB,
            stride: 2 * KB,
            write_fraction: 0.4,
            chunked: true,
        })
        .block("bodytrack.edgey.convolve", 44, 7, 0)
        .finish();

    let weights = b
        .phase("particle_weights", 640, true)
        // Each particle projects the body model onto the (shared, read-only)
        // edge maps and keeps private likelihood state.
        .pattern(AccessPattern::SharedRandom { id: 1, bytes: 512 * KB, write_fraction: 0.0 })
        .pattern(AccessPattern::PrivateRandom { bytes: 96 * KB, write_fraction: 0.4 })
        .block("bodytrack.weights.project", 52, 6, 0)
        .block("bodytrack.weights.likelihood", 64, 4, 1)
        .finish();

    let resample = b
        .phase("resample", 256, true)
        .pattern(AccessPattern::SharedStream {
            id: 2,
            bytes: 256 * KB,
            stride: 64,
            write_fraction: 0.6,
            chunked: false,
        })
        .pattern(AccessPattern::ReduceShared { id: 3, bytes: 8 * KB })
        .block("bodytrack.resample.copy", 16, 5, 0)
        .block("bodytrack.resample.cdf", 10, 3, 1)
        .finish();

    b.schedule_one(setup);
    for _ in 0..8usize {
        // Per-frame stage pipeline: image processing then 3 annealing layers
        // of (weights, weights, resample) — 11 barriers per frame.
        b.schedule_one(gradient);
        b.schedule_one(edge_x);
        b.schedule_one(edge_y);
        for layer in 0..3usize {
            // Later annealing layers evaluate fewer particles.
            let scale = 1.0 - 0.25 * layer as f64;
            b.schedule_scaled(weights, scale);
            b.schedule_scaled(weights, scale * 0.9);
            if layer < 2 {
                b.schedule_one(resample);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workload;

    #[test]
    fn has_89_barriers() {
        let w = build(&WorkloadConfig::new(8).with_scale(0.1));
        assert_eq!(w.num_regions(), 89);
        assert_eq!(w.name(), "parsec-bodytrack");
    }

    #[test]
    fn frame_pipeline_starts_with_image_processing() {
        let w = build(&WorkloadConfig::new(8).with_scale(0.1));
        assert_eq!(w.region_phase_name(0), "load_model");
        assert_eq!(w.region_phase_name(1), "image_gradient");
        assert_eq!(w.region_phase_name(2), "edge_filter_x");
        assert_eq!(w.region_phase_name(3), "edge_filter_y");
        assert_eq!(w.region_phase_name(4), "particle_weights");
    }

    #[test]
    fn later_annealing_layers_do_less_work() {
        let w = build(&WorkloadConfig::new(8).with_scale(0.3));
        // Region 4 is the first annealing layer's weights; region 10 the last's.
        let first: u64 = w.region_trace(4, 0).map(|e| u64::from(e.instructions)).sum();
        let last: u64 = w.region_trace(10, 0).map(|e| u64::from(e.instructions)).sum();
        assert!(first > last);
    }
}
