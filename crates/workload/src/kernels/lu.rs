//! Model of NPB LU (SSOR solver), class-A-like structure.
//!
//! LU runs 250 SSOR iterations, each consisting of a lower-triangular and an
//! upper-triangular wavefront sweep separated by barriers, plus three setup
//! regions: `3 + 250 * 2 = 503` dynamic barriers, matching Figure 1.

use super::{KB, MB};
use crate::phase::AccessPattern;
use crate::synthetic::{SyntheticWorkload, SyntheticWorkloadBuilder};
use crate::workload::WorkloadConfig;

/// Builds the `npb-lu` workload model.
pub fn build(config: &WorkloadConfig) -> SyntheticWorkload {
    let mut b = SyntheticWorkloadBuilder::new("npb-lu", *config);

    let init_grid = b
        .phase("setbv", 256, true)
        .pattern(AccessPattern::SharedStream {
            id: 0,
            bytes: 768 * KB,
            stride: 64,
            write_fraction: 0.9,
            chunked: true,
        })
        .block("lu.setbv.fill", 20, 6, 0)
        .finish();

    let init_rhs = b
        .phase("rhs_init", 320, true)
        .pattern(AccessPattern::Stencil {
            id: 0,
            bytes: 768 * KB,
            plane: 6 * KB,
            write_fraction: 0.3,
        })
        .block("lu.rhs.stencil", 48, 9, 0)
        .finish();

    let norm = b
        .phase("l2norm", 192, true)
        .pattern(AccessPattern::SharedStream {
            id: 0,
            bytes: 768 * KB,
            stride: 64,
            write_fraction: 0.0,
            chunked: true,
        })
        .pattern(AccessPattern::ReduceShared { id: 1, bytes: 2 * KB })
        .block("lu.norm.sum", 10, 4, 0)
        .block("lu.norm.accum", 6, 2, 1)
        .finish();

    let blts = b
        .phase("blts", 288, true)
        .pattern(AccessPattern::Stencil {
            id: 0,
            bytes: 768 * KB,
            plane: 6 * KB,
            write_fraction: 0.4,
        })
        .pattern(AccessPattern::PrivateStream { bytes: 24 * KB, stride: 64 })
        .block("lu.blts.wavefront", 56, 8, 0)
        .block("lu.blts.jac", 34, 4, 1)
        .finish();

    let buts = b
        .phase("buts", 288, true)
        .pattern(AccessPattern::Stencil {
            id: 0,
            bytes: 768 * KB,
            plane: 6 * KB,
            write_fraction: 0.4,
        })
        .pattern(AccessPattern::PrivateStream { bytes: 24 * KB, stride: 64 })
        .block("lu.buts.wavefront", 58, 8, 0)
        .block("lu.buts.jac", 36, 4, 1)
        .finish();

    // A shared grid of ~0.75 MB; the model never exceeds 1 MB so that the
    // scaled LLC capacities (256 KB vs 1 MB) straddle the working set.
    const _: () = assert!(768 * KB < MB);

    b.schedule_one(init_grid);
    b.schedule_one(init_rhs);
    b.schedule_one(norm);
    for step in 0..250usize {
        // The first iterations perform extra residual work before the solver
        // settles: longer regions of the same behaviour (multiplier scaling).
        let scale = if step < 25 { 1.6 } else { 1.0 };
        b.schedule_scaled(blts, scale);
        b.schedule_scaled(buts, scale);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workload;

    #[test]
    fn has_503_barriers() {
        let w = build(&WorkloadConfig::new(8).with_scale(0.05));
        assert_eq!(w.num_regions(), 503);
        assert_eq!(w.name(), "npb-lu");
    }

    #[test]
    fn steady_state_alternates_sweeps() {
        let w = build(&WorkloadConfig::new(8).with_scale(0.05));
        assert_eq!(w.region_phase_name(3), "blts");
        assert_eq!(w.region_phase_name(4), "buts");
        assert_eq!(w.region_phase_name(501), "blts");
        assert_eq!(w.region_phase_name(502), "buts");
    }
}
