//! Model of NPB FT (3-D FFT), class-A-like structure.
//!
//! FT evolves a spectrum over 6 iterations; each iteration applies the
//! evolution operator and 1-D FFTs along the three dimensions followed by a
//! checksum reduction.  Together with four setup regions this gives
//! `4 + 6 * 5 = 34` dynamic barriers, matching Figure 1 and Table III.

use super::{KB, MB};
use crate::phase::AccessPattern;
use crate::synthetic::{SyntheticWorkload, SyntheticWorkloadBuilder};
use crate::workload::WorkloadConfig;

/// Builds the `npb-ft` workload model.
pub fn build(config: &WorkloadConfig) -> SyntheticWorkload {
    let mut b = SyntheticWorkloadBuilder::new("npb-ft", *config);

    let setup = b
        .phase("setup", 256, true)
        .pattern(AccessPattern::PrivateStream { bytes: 64 * KB, stride: 64 })
        .block("ft.setup.indexmap", 30, 4, 0)
        .finish();

    let init_ur = b
        .phase("init_ur", 512, true)
        .pattern(AccessPattern::SharedStream {
            id: 0,
            bytes: MB,
            stride: 64,
            write_fraction: 0.95,
            chunked: true,
        })
        .block("ft.init.random", 44, 6, 0)
        .finish();

    let evolve = b
        .phase("evolve", 768, true)
        .pattern(AccessPattern::SharedStream {
            id: 0,
            bytes: MB,
            stride: 64,
            write_fraction: 0.5,
            chunked: true,
        })
        .block("ft.evolve.scale", 22, 8, 0)
        .finish();

    let fft_x = b
        .phase("fft_x", 640, true)
        .pattern(AccessPattern::SharedStream {
            id: 0,
            bytes: MB,
            stride: 64,
            write_fraction: 0.5,
            chunked: true,
        })
        .pattern(AccessPattern::PrivateStream { bytes: 16 * KB, stride: 64 })
        .block("ft.fftx.load", 18, 6, 0)
        .block("ft.fftx.butterfly", 72, 6, 1)
        .finish();

    let fft_y = b
        .phase("fft_y", 640, true)
        .pattern(AccessPattern::SharedStream {
            id: 0,
            bytes: MB,
            stride: 2 * KB,
            write_fraction: 0.5,
            chunked: true,
        })
        .pattern(AccessPattern::PrivateStream { bytes: 16 * KB, stride: 64 })
        .block("ft.ffty.load", 18, 6, 0)
        .block("ft.ffty.butterfly", 72, 6, 1)
        .finish();

    let fft_z = b
        .phase("fft_z", 640, true)
        // The z-dimension pass strides across planes and is effectively a
        // transpose: poor locality, large reuse distances.
        .pattern(AccessPattern::SharedStream {
            id: 0,
            bytes: MB,
            stride: 32 * KB,
            write_fraction: 0.5,
            chunked: true,
        })
        .pattern(AccessPattern::PrivateStream { bytes: 16 * KB, stride: 64 })
        .block("ft.fftz.load", 18, 6, 0)
        .block("ft.fftz.butterfly", 72, 6, 1)
        .finish();

    let checksum = b
        .phase("checksum", 192, true)
        .pattern(AccessPattern::SharedRandom { id: 0, bytes: MB, write_fraction: 0.0 })
        .pattern(AccessPattern::ReduceShared { id: 1, bytes: 2 * KB })
        .block("ft.checksum.sample", 14, 4, 0)
        .block("ft.checksum.accum", 8, 2, 1)
        .finish();

    // Four setup barriers: index map, two halves of the initial condition and
    // the initial forward FFT warmup.
    b.schedule_one(setup);
    b.schedule_one(init_ur);
    b.schedule_scaled(init_ur, 0.5);
    b.schedule_one(fft_x);
    for _ in 0..6 {
        b.schedule_one(evolve);
        b.schedule_one(fft_x);
        b.schedule_one(fft_y);
        b.schedule_one(fft_z);
        b.schedule_one(checksum);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workload;

    #[test]
    fn has_34_barriers() {
        let w = build(&WorkloadConfig::new(8).with_scale(0.1));
        assert_eq!(w.num_regions(), 34);
        assert_eq!(w.name(), "npb-ft");
    }

    #[test]
    fn steady_state_cycle_is_five_phases() {
        let w = build(&WorkloadConfig::new(8).with_scale(0.1));
        assert_eq!(w.region_phase_name(4), "evolve");
        assert_eq!(w.region_phase_name(5), "fft_x");
        assert_eq!(w.region_phase_name(8), "checksum");
        assert_eq!(w.region_phase_name(9), "evolve");
    }
}
