//! Model of NPB CG (conjugate gradient), class-A-like structure.
//!
//! CG performs 15 outer iterations; each iteration runs a sparse
//! matrix-vector product, a set of reductions and vector updates, each ending
//! in a barrier: `1 + 15 * 3 = 46` dynamic barriers, matching Figure 1.
//!
//! The sparse matrix stream plus gather vector form a working set that does
//! not fit a single socket's LLC but does fit four sockets' combined LLC,
//! reproducing the superlinear 8→32-core scaling the paper observes for CG
//! (Figure 8).

use super::KB;
use crate::phase::AccessPattern;
use crate::synthetic::{SyntheticWorkload, SyntheticWorkloadBuilder};
use crate::workload::WorkloadConfig;

/// Builds the `npb-cg` workload model.
pub fn build(config: &WorkloadConfig) -> SyntheticWorkload {
    let mut b = SyntheticWorkloadBuilder::new("npb-cg", *config);

    let init = b
        .phase("makea", 512, true)
        .pattern(AccessPattern::SharedStream {
            id: 0,
            bytes: 640 * KB,
            stride: 64,
            write_fraction: 0.8,
            chunked: true,
        })
        .pattern(AccessPattern::PrivateRandom { bytes: 64 * KB, write_fraction: 0.5 })
        .block("cg.makea.fill", 24, 6, 0)
        .block("cg.makea.sprnvc", 52, 5, 1)
        .finish();

    let matvec = b
        .phase("matvec", 1536, true)
        // Stream the sparse matrix (values + column indices)...
        .pattern(AccessPattern::SharedStream {
            id: 0,
            bytes: 640 * KB,
            stride: 64,
            write_fraction: 0.0,
            chunked: true,
        })
        // ... and gather from the dense vector, shared by all threads.
        .pattern(AccessPattern::SharedRandom { id: 1, bytes: 96 * KB, write_fraction: 0.0 })
        .block("cg.matvec.row", 10, 6, 0)
        .block("cg.matvec.gather", 6, 5, 1)
        .finish();

    let reduce = b
        .phase("reduce", 512, true)
        .pattern(AccessPattern::SharedStream {
            id: 1,
            bytes: 96 * KB,
            stride: 64,
            write_fraction: 0.0,
            chunked: true,
        })
        .pattern(AccessPattern::ReduceShared { id: 2, bytes: 4 * KB })
        .block("cg.reduce.dot", 9, 4, 0)
        .block("cg.reduce.accum", 5, 2, 1)
        .finish();

    let axpy = b
        .phase("axpy", 640, true)
        .pattern(AccessPattern::SharedStream {
            id: 1,
            bytes: 96 * KB,
            stride: 64,
            write_fraction: 0.5,
            chunked: true,
        })
        .block("cg.axpy.update", 8, 6, 0)
        .finish();

    b.schedule_one(init);
    for _ in 0..15 {
        b.schedule_one(matvec);
        b.schedule_one(reduce);
        b.schedule_one(axpy);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workload;

    #[test]
    fn has_46_barriers() {
        let w = build(&WorkloadConfig::new(8).with_scale(0.1));
        assert_eq!(w.num_regions(), 46);
        assert_eq!(w.name(), "npb-cg");
    }

    #[test]
    fn matvec_dominates_work() {
        let w = build(&WorkloadConfig::new(8).with_scale(0.1));
        let matvec: u64 = w.region_trace(1, 0).map(|e| u64::from(e.instructions)).sum();
        let reduce: u64 = w.region_trace(2, 0).map(|e| u64::from(e.instructions)).sum();
        assert!(matvec > reduce);
    }
}
