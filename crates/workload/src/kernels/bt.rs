//! Model of NPB BT (block tri-diagonal solver), class-A-like structure.
//!
//! BT advances a CFD solution with 200 time steps; each step recomputes the
//! right-hand side and then runs ADI sweeps in the x, y and z directions
//! followed by a solution update, each separated by an OpenMP barrier:
//! `1 + 200 * 5 = 1001` dynamic barriers, matching Figure 1.

use super::{KB, MB};
use crate::phase::AccessPattern;
use crate::synthetic::{SyntheticWorkload, SyntheticWorkloadBuilder};
use crate::workload::WorkloadConfig;

/// Builds the `npb-bt` workload model.
pub fn build(config: &WorkloadConfig) -> SyntheticWorkload {
    let mut b = SyntheticWorkloadBuilder::new("npb-bt", *config);

    let init = b
        .phase("init", 256, true)
        .pattern(AccessPattern::SharedStream {
            id: 0,
            bytes: MB,
            stride: 64,
            write_fraction: 0.9,
            chunked: true,
        })
        .block("bt.init.zero", 14, 8, 0)
        .block("bt.init.exact", 40, 4, 0)
        .finish();

    let rhs = b
        .phase("compute_rhs", 384, true)
        .pattern(AccessPattern::Stencil { id: 0, bytes: MB, plane: 8 * KB, write_fraction: 0.3 })
        .pattern(AccessPattern::PrivateStream { bytes: 32 * KB, stride: 64 })
        .block("bt.rhs.stencil", 46, 9, 0)
        .block("bt.rhs.flux", 28, 4, 1)
        .finish();

    let x_solve = b
        .phase("x_solve", 320, true)
        .pattern(AccessPattern::SharedStream {
            id: 0,
            bytes: MB,
            stride: 64,
            write_fraction: 0.4,
            chunked: true,
        })
        .pattern(AccessPattern::PrivateStream { bytes: 48 * KB, stride: 64 })
        .block("bt.xsolve.forward", 62, 8, 0)
        .block("bt.xsolve.back", 38, 5, 1)
        .finish();

    let y_solve = b
        .phase("y_solve", 320, true)
        .pattern(AccessPattern::SharedStream {
            id: 0,
            bytes: MB,
            stride: 512,
            write_fraction: 0.4,
            chunked: true,
        })
        .pattern(AccessPattern::PrivateStream { bytes: 48 * KB, stride: 64 })
        .block("bt.ysolve.forward", 62, 8, 0)
        .block("bt.ysolve.back", 38, 5, 1)
        .finish();

    let z_solve = b
        .phase("z_solve", 320, true)
        .pattern(AccessPattern::SharedStream {
            id: 0,
            bytes: MB,
            stride: 8 * KB,
            write_fraction: 0.4,
            chunked: true,
        })
        .pattern(AccessPattern::PrivateStream { bytes: 48 * KB, stride: 64 })
        .block("bt.zsolve.forward", 70, 8, 0)
        .block("bt.zsolve.back", 42, 5, 1)
        .finish();

    let add = b
        .phase("add", 256, true)
        .pattern(AccessPattern::SharedStream {
            id: 0,
            bytes: MB,
            stride: 64,
            write_fraction: 0.5,
            chunked: true,
        })
        .block("bt.add.update", 18, 6, 0)
        .finish();

    b.schedule_one(init);
    for step in 0..200usize {
        // Early time steps carry slightly more RHS work (boundary setup has
        // not yet converged); this yields same-cluster regions of different
        // lengths and therefore exercises multiplier scaling.
        let rhs_scale = if step < 20 { 1.5 } else { 1.0 };
        b.schedule_scaled(rhs, rhs_scale);
        b.schedule_one(x_solve);
        b.schedule_one(y_solve);
        b.schedule_one(z_solve);
        b.schedule_one(add);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workload;

    #[test]
    fn has_1001_barriers() {
        let w = build(&WorkloadConfig::new(8).with_scale(0.05));
        assert_eq!(w.num_regions(), 1001);
        assert_eq!(w.name(), "npb-bt");
    }

    #[test]
    fn five_phase_steady_state_cycle() {
        let w = build(&WorkloadConfig::new(8).with_scale(0.05));
        assert_eq!(w.region_phase_name(0), "init");
        assert_eq!(w.region_phase_name(1), "compute_rhs");
        assert_eq!(w.region_phase_name(2), "x_solve");
        assert_eq!(w.region_phase_name(5), "add");
        assert_eq!(w.region_phase_name(6), "compute_rhs");
    }

    #[test]
    fn early_rhs_regions_are_longer() {
        let w = build(&WorkloadConfig::new(8).with_scale(0.2));
        let early: u64 = w.region_trace(1, 0).map(|e| u64::from(e.instructions)).sum();
        let late: u64 = w.region_trace(996, 0).map(|e| u64::from(e.instructions)).sum();
        assert!(early > late, "early rhs {early} should exceed steady-state rhs {late}");
    }
}
