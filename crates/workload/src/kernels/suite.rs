//! The benchmark suite evaluated in the paper (NPB class A + PARSEC
//! bodytrack simlarge), as a single enumeration.

use crate::kernels;
use crate::synthetic::SyntheticWorkload;
use crate::workload::WorkloadConfig;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A benchmark from the paper's evaluation (Section V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Benchmark {
    /// PARSEC bodytrack, simlarge input.
    ParsecBodytrack,
    /// NPB BT (block tri-diagonal solver), class A.
    NpbBt,
    /// NPB CG (conjugate gradient), class A.
    NpbCg,
    /// NPB FT (3-D FFT), class A.
    NpbFt,
    /// NPB IS (integer sort), class A.
    NpbIs,
    /// NPB LU (SSOR solver), class A.
    NpbLu,
    /// NPB MG (multigrid), class A.
    NpbMg,
    /// NPB SP (scalar penta-diagonal solver), class A.
    NpbSp,
}

impl Benchmark {
    /// All benchmarks in the order the paper's figures list them.
    pub fn all() -> &'static [Benchmark] {
        &[
            Benchmark::ParsecBodytrack,
            Benchmark::NpbBt,
            Benchmark::NpbCg,
            Benchmark::NpbFt,
            Benchmark::NpbIs,
            Benchmark::NpbLu,
            Benchmark::NpbMg,
            Benchmark::NpbSp,
        ]
    }

    /// The benchmark's name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::ParsecBodytrack => "parsec-bodytrack",
            Benchmark::NpbBt => "npb-bt",
            Benchmark::NpbCg => "npb-cg",
            Benchmark::NpbFt => "npb-ft",
            Benchmark::NpbIs => "npb-is",
            Benchmark::NpbLu => "npb-lu",
            Benchmark::NpbMg => "npb-mg",
            Benchmark::NpbSp => "npb-sp",
        }
    }

    /// Input set name used in the paper (Table III).
    pub fn input_size(self) -> &'static str {
        match self {
            Benchmark::ParsecBodytrack => "large",
            _ => "A",
        }
    }

    /// Dynamic barrier count the paper reports (Figure 1 / Table III).
    pub fn paper_barrier_count(self) -> usize {
        match self {
            Benchmark::ParsecBodytrack => 89,
            Benchmark::NpbBt => 1001,
            Benchmark::NpbCg => 46,
            Benchmark::NpbFt => 34,
            Benchmark::NpbIs => 11,
            Benchmark::NpbLu => 503,
            Benchmark::NpbMg => 245,
            Benchmark::NpbSp => 3601,
        }
    }

    /// Builds the benchmark's workload model under `config`.
    pub fn build(self, config: &WorkloadConfig) -> SyntheticWorkload {
        match self {
            Benchmark::ParsecBodytrack => kernels::bodytrack::build(config),
            Benchmark::NpbBt => kernels::bt::build(config),
            Benchmark::NpbCg => kernels::cg::build(config),
            Benchmark::NpbFt => kernels::ft::build(config),
            Benchmark::NpbIs => kernels::is::build(config),
            Benchmark::NpbLu => kernels::lu::build(config),
            Benchmark::NpbMg => kernels::mg::build(config),
            Benchmark::NpbSp => kernels::sp::build(config),
        }
    }

    /// Parses a benchmark from its paper name (e.g. `"npb-ft"`).
    pub fn from_name(name: &str) -> Option<Benchmark> {
        Benchmark::all().iter().copied().find(|b| b.name() == name)
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_names_round_trip() {
        for &b in Benchmark::all() {
            assert_eq!(Benchmark::from_name(b.name()), Some(b));
        }
        assert_eq!(Benchmark::from_name("npb-ua"), None);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Benchmark::NpbFt.to_string(), "npb-ft");
        assert_eq!(Benchmark::ParsecBodytrack.input_size(), "large");
        assert_eq!(Benchmark::NpbBt.input_size(), "A");
    }
}
