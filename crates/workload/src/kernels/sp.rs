//! Model of NPB SP (scalar penta-diagonal solver), class-A-like structure.
//!
//! SP advances the solution with 400 time steps; each step is nine
//! barrier-separated phases (RHS, forward elimination and back substitution
//! in x/y/z, the inverse transform and the solution update):
//! `1 + 400 * 9 = 3601` dynamic barriers, matching Figure 1 — the largest
//! barrier count in the suite.

use super::{KB, MB};
use crate::phase::AccessPattern;
use crate::synthetic::{SyntheticWorkload, SyntheticWorkloadBuilder};
use crate::workload::WorkloadConfig;

/// Builds the `npb-sp` workload model.
pub fn build(config: &WorkloadConfig) -> SyntheticWorkload {
    let mut b = SyntheticWorkloadBuilder::new("npb-sp", *config);
    let grid = 768 * KB;
    debug_assert!(grid < MB);

    let init = b
        .phase("initialize", 192, true)
        .pattern(AccessPattern::SharedStream {
            id: 0,
            bytes: grid,
            stride: 64,
            write_fraction: 0.9,
            chunked: true,
        })
        .block("sp.init.exact", 36, 6, 0)
        .finish();

    let rhs = b
        .phase("compute_rhs", 160, true)
        .pattern(AccessPattern::Stencil { id: 0, bytes: grid, plane: 6 * KB, write_fraction: 0.3 })
        .block("sp.rhs.stencil", 44, 9, 0)
        .finish();

    let txinvr = b
        .phase("txinvr", 128, true)
        .pattern(AccessPattern::SharedStream {
            id: 0,
            bytes: grid,
            stride: 64,
            write_fraction: 0.5,
            chunked: true,
        })
        .block("sp.txinvr.transform", 30, 6, 0)
        .finish();

    let x_solve = b
        .phase("x_solve", 144, true)
        .pattern(AccessPattern::SharedStream {
            id: 0,
            bytes: grid,
            stride: 64,
            write_fraction: 0.4,
            chunked: true,
        })
        .pattern(AccessPattern::PrivateStream { bytes: 16 * KB, stride: 64 })
        .block("sp.xsolve.thomas", 40, 7, 0)
        .block("sp.xsolve.scratch", 18, 3, 1)
        .finish();

    let y_solve = b
        .phase("y_solve", 144, true)
        .pattern(AccessPattern::SharedStream {
            id: 0,
            bytes: grid,
            stride: 384,
            write_fraction: 0.4,
            chunked: true,
        })
        .pattern(AccessPattern::PrivateStream { bytes: 16 * KB, stride: 64 })
        .block("sp.ysolve.thomas", 40, 7, 0)
        .block("sp.ysolve.scratch", 18, 3, 1)
        .finish();

    let z_solve = b
        .phase("z_solve", 144, true)
        .pattern(AccessPattern::SharedStream {
            id: 0,
            bytes: grid,
            stride: 6 * KB,
            write_fraction: 0.4,
            chunked: true,
        })
        .pattern(AccessPattern::PrivateStream { bytes: 16 * KB, stride: 64 })
        .block("sp.zsolve.thomas", 44, 7, 0)
        .block("sp.zsolve.scratch", 18, 3, 1)
        .finish();

    let tzetar = b
        .phase("tzetar", 128, true)
        .pattern(AccessPattern::SharedStream {
            id: 0,
            bytes: grid,
            stride: 64,
            write_fraction: 0.5,
            chunked: true,
        })
        .block("sp.tzetar.transform", 32, 6, 0)
        .finish();

    let pinvr = b
        .phase("pinvr", 128, true)
        .pattern(AccessPattern::SharedStream {
            id: 0,
            bytes: grid,
            stride: 64,
            write_fraction: 0.5,
            chunked: true,
        })
        .block("sp.pinvr.transform", 28, 6, 0)
        .finish();

    let add = b
        .phase("add", 112, true)
        .pattern(AccessPattern::SharedStream {
            id: 0,
            bytes: grid,
            stride: 64,
            write_fraction: 0.5,
            chunked: true,
        })
        .block("sp.add.update", 14, 6, 0)
        .finish();

    b.schedule_one(init);
    for step in 0..400usize {
        // A handful of early steps take longer (initial transients), giving
        // same-cluster regions with different instruction counts.
        let scale = if step < 8 { 1.4 } else { 1.0 };
        b.schedule_scaled(rhs, scale);
        b.schedule_one(txinvr);
        b.schedule_one(x_solve);
        b.schedule_one(pinvr);
        b.schedule_one(y_solve);
        b.schedule_one(tzetar);
        b.schedule_one(z_solve);
        b.schedule_scaled(tzetar, 0.8);
        b.schedule_one(add);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workload;

    #[test]
    fn has_3601_barriers() {
        let w = build(&WorkloadConfig::new(8).with_scale(0.05));
        assert_eq!(w.num_regions(), 3601);
        assert_eq!(w.name(), "npb-sp");
    }

    #[test]
    fn nine_phase_time_step() {
        let w = build(&WorkloadConfig::new(8).with_scale(0.05));
        assert_eq!(w.region_phase_name(1), "compute_rhs");
        assert_eq!(w.region_phase_name(9), "add");
        assert_eq!(w.region_phase_name(10), "compute_rhs");
    }
}
