use serde::{Deserialize, Serialize};

/// Cache line size assumed throughout the reproduction, in bytes.
///
/// The simulated hierarchy (Table I of the paper) uses 64-byte lines; the
/// signature and warmup machinery also operate at line granularity.
pub const CACHE_LINE_BYTES: u64 = 64;

/// Whether a memory access reads or writes its target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

impl AccessKind {
    /// Returns `true` for [`AccessKind::Write`].
    ///
    /// ```
    /// use bp_workload::AccessKind;
    /// assert!(AccessKind::Write.is_write());
    /// assert!(!AccessKind::Read.is_write());
    /// ```
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

/// A single dynamic memory reference performed by a basic block execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemoryAccess {
    /// Virtual byte address of the access.
    pub addr: u64,
    /// Read or write.
    pub kind: AccessKind,
    /// Access size in bytes (informational; the hierarchy operates on lines).
    pub size: u8,
}

impl MemoryAccess {
    /// Creates a read access of `size` bytes at `addr`.
    pub fn read(addr: u64, size: u8) -> Self {
        Self { addr, kind: AccessKind::Read, size }
    }

    /// Creates a write access of `size` bytes at `addr`.
    pub fn write(addr: u64, size: u8) -> Self {
        Self { addr, kind: AccessKind::Write, size }
    }

    /// The cache line (address divided by [`CACHE_LINE_BYTES`]) this access touches.
    ///
    /// ```
    /// use bp_workload::MemoryAccess;
    /// assert_eq!(MemoryAccess::read(130, 8).line(), 2);
    /// ```
    pub fn line(&self) -> u64 {
        self.addr / CACHE_LINE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_rounds_down() {
        assert_eq!(MemoryAccess::read(0, 8).line(), 0);
        assert_eq!(MemoryAccess::read(63, 8).line(), 0);
        assert_eq!(MemoryAccess::read(64, 8).line(), 1);
        assert_eq!(MemoryAccess::write(6400, 4).line(), 100);
    }

    #[test]
    fn kind_predicates() {
        assert!(MemoryAccess::write(0, 8).kind.is_write());
        assert!(!MemoryAccess::read(0, 8).kind.is_write());
    }
}
