use crate::block::{BasicBlockId, BlockTable};
use crate::phase::{AccessPattern, Phase, PhaseBlock, PhaseId, ScheduleEntry};
use crate::region::RegionTrace;
use crate::workload::{Workload, WorkloadConfig};

/// A data-driven barrier-synchronized workload built from phases and a
/// region schedule.
///
/// Every benchmark model in [`crate::kernels`] is an instance of this type;
/// custom workloads can be assembled with [`SyntheticWorkloadBuilder`].
#[derive(Debug, Clone)]
pub struct SyntheticWorkload {
    name: String,
    config: WorkloadConfig,
    phases: Vec<Phase>,
    schedule: Vec<ScheduleEntry>,
    blocks: BlockTable,
}

impl SyntheticWorkload {
    /// The workload configuration (threads, scale, seed).
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// The region schedule: which phase each inter-barrier region executes.
    pub fn schedule(&self) -> &[ScheduleEntry] {
        &self.schedule
    }

    /// The phase definitions.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Deterministic seed for a `(region, thread)` trace.
    fn trace_seed(&self, region: usize, thread: usize) -> u64 {
        // SplitMix-style mixing keeps per-(region, thread) streams decorrelated.
        let mut x = self
            .config
            .seed
            .wrapping_add(region as u64 + 1)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(thread as u64 + 1);
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x
    }
}

impl Workload for SyntheticWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_threads(&self) -> usize {
        self.config.threads
    }

    fn num_regions(&self) -> usize {
        self.schedule.len()
    }

    fn block_table(&self) -> &BlockTable {
        &self.blocks
    }

    fn region_trace(&self, region: usize, thread: usize) -> RegionTrace {
        assert!(region < self.schedule.len(), "region {region} out of range");
        assert!(thread < self.config.threads, "thread {thread} out of range");
        let entry = self.schedule[region];
        let mut phase = self.phases[entry.phase.0].clone();
        // The workload-level scale shrinks both the per-region work and the
        // working sets, so a scaled-down run behaves like a smaller input
        // class (the regions still sweep their whole data set).  The
        // schedule-entry scale only lengthens/shortens the region.
        if (self.config.scale - 1.0).abs() > f64::EPSILON {
            for pattern in &mut phase.patterns {
                *pattern = pattern.with_scaled_working_set(self.config.scale);
            }
        }
        RegionTrace::new(
            phase,
            entry.scale * self.config.scale,
            self.config.threads,
            thread,
            self.trace_seed(region, thread),
        )
    }

    fn region_phase_name(&self, region: usize) -> &str {
        &self.phases[self.schedule[region].phase.0].name
    }

    fn profile_fingerprint(&self) -> u64 {
        // The trait's default hashes only what is visible through the trait;
        // synthetic traces additionally depend on the configuration (seed,
        // scale, threads) and on every phase/schedule parameter.  Hash the
        // serialized forms so new pattern fields can never silently alias.
        let mut hasher = crate::workload::FingerprintHasher::new();
        hasher.write_str("synthetic-v1");
        hasher.write_str(&self.name);
        hasher.write_u64(self.config.threads as u64);
        hasher.write_f64(self.config.scale);
        hasher.write_u64(self.config.seed);
        hasher.write_bytes(&serde::to_vec(&self.phases));
        hasher.write_bytes(&serde::to_vec(&self.schedule));
        hasher.write_bytes(&serde::to_vec(&self.blocks));
        hasher.finish()
    }
}

/// Builder for [`SyntheticWorkload`]s.
///
/// ```
/// use bp_workload::{AccessPattern, SyntheticWorkloadBuilder, WorkloadConfig, Workload};
///
/// let mut b = SyntheticWorkloadBuilder::new("demo", WorkloadConfig::new(4));
/// let compute = b
///     .phase("compute", 64, true)
///     .pattern(AccessPattern::PrivateStream { bytes: 8192, stride: 64 })
///     .block("compute.loop", 20, 4, 0)
///     .finish();
/// b.schedule_repeat(compute, 10);
/// let workload = b.build();
/// assert_eq!(workload.num_regions(), 10);
/// ```
#[derive(Debug)]
pub struct SyntheticWorkloadBuilder {
    name: String,
    config: WorkloadConfig,
    phases: Vec<Phase>,
    schedule: Vec<ScheduleEntry>,
    blocks: BlockTable,
}

impl SyntheticWorkloadBuilder {
    /// Starts building a workload called `name` under `config`.
    pub fn new(name: impl Into<String>, config: WorkloadConfig) -> Self {
        Self {
            name: name.into(),
            config,
            phases: Vec::new(),
            schedule: Vec::new(),
            blocks: BlockTable::new(),
        }
    }

    /// Starts the definition of a new phase with `iterations` loop-body
    /// traversals per region; `divide_by_threads` selects data-parallel
    /// splitting of the iterations across threads.
    pub fn phase(
        &mut self,
        name: impl Into<String>,
        iterations: u64,
        divide_by_threads: bool,
    ) -> PhaseBuilder<'_> {
        PhaseBuilder {
            owner: self,
            phase: Phase {
                name: name.into(),
                patterns: Vec::new(),
                blocks: Vec::new(),
                iterations,
                divide_by_threads,
            },
        }
    }

    /// Appends one region running `phase` at nominal scale.
    pub fn schedule_one(&mut self, phase: PhaseId) -> &mut Self {
        self.schedule.push(ScheduleEntry::new(phase));
        self
    }

    /// Appends one region running `phase` with an extra length scale.
    pub fn schedule_scaled(&mut self, phase: PhaseId, scale: f64) -> &mut Self {
        self.schedule.push(ScheduleEntry::scaled(phase, scale));
        self
    }

    /// Appends `count` consecutive regions all running `phase`.
    pub fn schedule_repeat(&mut self, phase: PhaseId, count: usize) -> &mut Self {
        for _ in 0..count {
            self.schedule.push(ScheduleEntry::new(phase));
        }
        self
    }

    /// Appends regions cycling through `phases`, `cycles` times
    /// (`cycles * phases.len()` regions in total).
    pub fn schedule_cycle(&mut self, phases: &[PhaseId], cycles: usize) -> &mut Self {
        for _ in 0..cycles {
            for &p in phases {
                self.schedule.push(ScheduleEntry::new(p));
            }
        }
        self
    }

    /// Number of regions scheduled so far.
    pub fn scheduled_regions(&self) -> usize {
        self.schedule.len()
    }

    /// Finalizes the workload.
    ///
    /// # Panics
    ///
    /// Panics if no region has been scheduled or if a schedule entry refers
    /// to an unknown phase.
    pub fn build(self) -> SyntheticWorkload {
        assert!(!self.schedule.is_empty(), "workload has no regions");
        for entry in &self.schedule {
            assert!(entry.phase.0 < self.phases.len(), "schedule refers to unknown phase");
        }
        SyntheticWorkload {
            name: self.name,
            config: self.config,
            phases: self.phases,
            schedule: self.schedule,
            blocks: self.blocks,
        }
    }
}

/// In-progress phase definition produced by [`SyntheticWorkloadBuilder::phase`].
#[derive(Debug)]
pub struct PhaseBuilder<'a> {
    owner: &'a mut SyntheticWorkloadBuilder,
    phase: Phase,
}

impl PhaseBuilder<'_> {
    /// Adds an access pattern to the phase and returns `self` for chaining.
    /// Patterns are referenced by blocks via their insertion index.
    pub fn pattern(mut self, pattern: AccessPattern) -> Self {
        self.phase.patterns.push(pattern);
        self
    }

    /// Adds a basic block to the phase loop body.
    ///
    /// `instructions` is the block's non-memory instruction count,
    /// `accesses` the number of memory references per execution and
    /// `pattern` the index of a previously added access pattern.
    ///
    /// # Panics
    ///
    /// Panics if `pattern` does not refer to a pattern added earlier.
    pub fn block(
        mut self,
        name: impl Into<String>,
        instructions: u32,
        accesses: u32,
        pattern: usize,
    ) -> Self {
        assert!(pattern < self.phase.patterns.len(), "pattern index out of range");
        let id: BasicBlockId = self.owner.blocks.add(name, instructions + accesses);
        self.phase.blocks.push(PhaseBlock { block: id, instructions, accesses, pattern });
        self
    }

    /// Completes the phase and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the phase has no blocks.
    pub fn finish(self) -> PhaseId {
        assert!(!self.phase.blocks.is_empty(), "phase {:?} has no blocks", self.phase.name);
        let id = PhaseId(self.owner.phases.len());
        self.owner.phases.push(self.phase);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_workload(threads: usize) -> SyntheticWorkload {
        let mut b = SyntheticWorkloadBuilder::new("tiny", WorkloadConfig::new(threads));
        let a = b
            .phase("a", 32, true)
            .pattern(AccessPattern::PrivateStream { bytes: 4096, stride: 64 })
            .block("a.body", 12, 4, 0)
            .finish();
        let c = b
            .phase("c", 16, true)
            .pattern(AccessPattern::SharedRandom { id: 0, bytes: 1 << 16, write_fraction: 0.2 })
            .block("c.body", 30, 8, 0)
            .finish();
        b.schedule_one(a).schedule_cycle(&[a, c], 3).schedule_one(c);
        b.build()
    }

    #[test]
    fn schedule_length_matches_regions() {
        let w = tiny_workload(4);
        assert_eq!(w.num_regions(), 8);
        assert_eq!(w.num_threads(), 4);
        assert_eq!(w.block_table().len(), 2);
        assert_eq!(w.region_phase_name(0), "a");
        assert_eq!(w.region_phase_name(7), "c");
    }

    #[test]
    fn traces_are_reproducible_across_calls() {
        let w = tiny_workload(4);
        let a: Vec<_> = w.region_trace(2, 1).collect();
        let b: Vec<_> = w.region_trace(2, 1).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_regions_of_same_phase_differ_in_random_patterns() {
        let w = tiny_workload(4);
        // Regions 2 and 4 both run phase "c" (random pattern) but with
        // different seeds, so the generated addresses differ.
        let a: Vec<_> = w.region_trace(2, 0).flat_map(|e| e.accesses).collect();
        let b: Vec<_> = w.region_trace(4, 0).flat_map(|e| e.accesses).collect();
        assert_eq!(a.len(), b.len());
        assert_ne!(a, b);
    }

    #[test]
    fn barrier_count_independent_of_threads() {
        assert_eq!(tiny_workload(2).num_regions(), tiny_workload(16).num_regions());
    }

    #[test]
    #[should_panic]
    fn out_of_range_region_panics() {
        let w = tiny_workload(2);
        let _ = w.region_trace(100, 0);
    }

    #[test]
    #[should_panic]
    fn empty_schedule_rejected() {
        let b = SyntheticWorkloadBuilder::new("x", WorkloadConfig::new(2));
        let _ = b.build();
    }
}
