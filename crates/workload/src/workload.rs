use crate::block::BlockTable;
use crate::region::RegionTrace;
use serde::{Deserialize, Serialize};

/// Configuration shared by all workload models.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Number of application threads (one per simulated core).
    pub threads: usize,
    /// Global scale factor on per-region work.  `1.0` is the crate's nominal
    /// (already laptop-sized) input; smaller values shrink regions further,
    /// which is useful for fast tests.
    pub scale: f64,
    /// Seed for all randomized access patterns.
    pub seed: u64,
}

impl WorkloadConfig {
    /// Creates a configuration for `threads` threads at nominal scale.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "a workload needs at least one thread");
        Self { threads, scale: 1.0, seed: 0x5eed_ba5e }
    }

    /// Sets the work scale factor.
    pub fn with_scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Sets the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self::new(8)
    }
}

/// A barrier-synchronized multi-threaded workload.
///
/// A workload consists of `num_regions()` inter-barrier regions separated by
/// global synchronization barriers.  All threads execute region `i`, then meet
/// at barrier `i`, then proceed to region `i + 1`.  The number of regions is
/// independent of the thread count, mirroring the OpenMP workloads in the
/// paper (Figure 1).
pub trait Workload: Send + Sync {
    /// Benchmark name, e.g. `"npb-cg"`.
    fn name(&self) -> &str;

    /// Number of application threads.
    fn num_threads(&self) -> usize;

    /// Number of inter-barrier regions (== number of dynamic barriers).
    fn num_regions(&self) -> usize;

    /// Static basic block table; defines BBV dimensionality.
    fn block_table(&self) -> &BlockTable;

    /// The stream of block executions `thread` performs in `region`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `region >= num_regions()` or
    /// `thread >= num_threads()`.
    fn region_trace(&self, region: usize, thread: usize) -> RegionTrace;

    /// Name of the phase executed by `region` (diagnostic only).
    fn region_phase_name(&self, region: usize) -> &str;

    /// A stable fingerprint of everything that determines this workload's
    /// profiling result, used as the content-address of the on-disk profile
    /// cache.
    ///
    /// Two workloads with equal fingerprints must produce bit-identical
    /// [`crate::RegionTrace`] streams for every `(region, thread)` pair.  The
    /// default implementation hashes the structural identity visible through
    /// this trait (name, thread count, region count, block table, per-region
    /// phase names); implementations whose traces depend on state not visible
    /// here — seeds, scale factors, input files — **must** override it and
    /// mix that state in (see `SyntheticWorkload`), or disable caching.
    fn profile_fingerprint(&self) -> u64 {
        let mut hasher = FingerprintHasher::new();
        hasher.write_str(self.name());
        hasher.write_u64(self.num_threads() as u64);
        hasher.write_u64(self.num_regions() as u64);
        for block in self.block_table().iter() {
            hasher.write_str(&block.name);
            hasher.write_u64(u64::from(block.instructions));
        }
        for region in 0..self.num_regions() {
            hasher.write_str(self.region_phase_name(region));
        }
        hasher.finish()
    }
}

/// FNV-1a accumulator for [`Workload::profile_fingerprint`] implementations.
///
/// Deliberately not `std::hash::Hasher`: `DefaultHasher` is allowed to change
/// across Rust releases, which would silently invalidate every on-disk
/// profile cache entry.  FNV-1a is fixed forever.
#[derive(Debug, Clone)]
pub struct FingerprintHasher {
    state: u64,
}

impl FingerprintHasher {
    /// Creates a hasher with the standard FNV-1a offset basis.
    pub fn new() -> Self {
        Self { state: 0xcbf2_9ce4_8422_2325 }
    }

    /// Mixes raw bytes into the fingerprint.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Mixes a length-delimited string into the fingerprint.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// Mixes a `u64` into the fingerprint.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Mixes an `f64` (by bit pattern) into the fingerprint.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// The accumulated fingerprint.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for FingerprintHasher {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_builder_chain() {
        let c = WorkloadConfig::new(32).with_scale(0.25).with_seed(7);
        assert_eq!(c.threads, 32);
        assert_eq!(c.scale, 0.25);
        assert_eq!(c.seed, 7);
    }

    #[test]
    #[should_panic]
    fn zero_threads_rejected() {
        let _ = WorkloadConfig::new(0);
    }

    #[test]
    fn default_is_eight_threads() {
        assert_eq!(WorkloadConfig::default().threads, 8);
    }
}
