use crate::block::BlockTable;
use crate::region::RegionTrace;
use serde::{Deserialize, Serialize};

/// Configuration shared by all workload models.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Number of application threads (one per simulated core).
    pub threads: usize,
    /// Global scale factor on per-region work.  `1.0` is the crate's nominal
    /// (already laptop-sized) input; smaller values shrink regions further,
    /// which is useful for fast tests.
    pub scale: f64,
    /// Seed for all randomized access patterns.
    pub seed: u64,
}

impl WorkloadConfig {
    /// Creates a configuration for `threads` threads at nominal scale.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "a workload needs at least one thread");
        Self { threads, scale: 1.0, seed: 0x5eed_ba5e }
    }

    /// Sets the work scale factor.
    pub fn with_scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Sets the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self::new(8)
    }
}

/// A barrier-synchronized multi-threaded workload.
///
/// A workload consists of `num_regions()` inter-barrier regions separated by
/// global synchronization barriers.  All threads execute region `i`, then meet
/// at barrier `i`, then proceed to region `i + 1`.  The number of regions is
/// independent of the thread count, mirroring the OpenMP workloads in the
/// paper (Figure 1).
pub trait Workload: Send + Sync {
    /// Benchmark name, e.g. `"npb-cg"`.
    fn name(&self) -> &str;

    /// Number of application threads.
    fn num_threads(&self) -> usize;

    /// Number of inter-barrier regions (== number of dynamic barriers).
    fn num_regions(&self) -> usize;

    /// Static basic block table; defines BBV dimensionality.
    fn block_table(&self) -> &BlockTable;

    /// The stream of block executions `thread` performs in `region`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `region >= num_regions()` or
    /// `thread >= num_threads()`.
    fn region_trace(&self, region: usize, thread: usize) -> RegionTrace;

    /// Name of the phase executed by `region` (diagnostic only).
    fn region_phase_name(&self, region: usize) -> &str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_builder_chain() {
        let c = WorkloadConfig::new(32).with_scale(0.25).with_seed(7);
        assert_eq!(c.threads, 32);
        assert_eq!(c.scale, 0.25);
        assert_eq!(c.seed, 7);
    }

    #[test]
    #[should_panic]
    fn zero_threads_rejected() {
        let _ = WorkloadConfig::new(0);
    }

    #[test]
    fn default_is_eight_threads() {
        assert_eq!(WorkloadConfig::default().threads, 8);
    }
}
