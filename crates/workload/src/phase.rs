use crate::block::BasicBlockId;
use serde::{Deserialize, Serialize};

/// Base of the per-thread private address space.
pub(crate) const PRIVATE_BASE: u64 = 0x0100_0000_0000;
/// Bytes reserved per thread in the private address space.
pub(crate) const PRIVATE_SPAN: u64 = 0x0000_4000_0000; // 1 GiB per thread
/// Base of the shared address space.
pub(crate) const SHARED_BASE: u64 = 0x2000_0000_0000;
/// Bytes reserved per shared buffer id.
pub(crate) const SHARED_SPAN: u64 = 0x0000_4000_0000;

/// Identifier of a phase within a [`crate::SyntheticWorkload`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PhaseId(pub usize);

/// A memory access pattern used by one or more blocks of a phase.
///
/// Patterns are deterministic: for a given `(workload seed, region, thread)`
/// the generated address stream is always the same, which keeps signature
/// collection, timing simulation and warmup collection mutually consistent.
///
/// Private patterns address a per-thread buffer (no sharing, no coherence
/// traffic); shared patterns address buffers visible to all threads, either
/// partitioned by thread (`chunked = true`, the common data-parallel case) or
/// freely (coherence and capacity interactions across cores).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Stream sequentially through a private buffer, wrapping around.
    PrivateStream {
        /// Working-set size of the buffer in bytes.
        bytes: u64,
        /// Distance between consecutive accesses in bytes.
        stride: u64,
    },
    /// Uniformly random accesses within a private buffer.
    PrivateRandom {
        /// Working-set size of the buffer in bytes.
        bytes: u64,
        /// Fraction of accesses that are writes (0.0 ..= 1.0).
        write_fraction: f64,
    },
    /// Stream through a shared buffer.
    SharedStream {
        /// Shared buffer identifier (buffers with the same id alias).
        id: u32,
        /// Total buffer size in bytes.
        bytes: u64,
        /// Distance between consecutive accesses in bytes.
        stride: u64,
        /// Fraction of accesses that are writes.
        write_fraction: f64,
        /// When `true` each thread streams only its own 1/N chunk of the buffer.
        chunked: bool,
    },
    /// Uniformly random accesses anywhere in a shared buffer.
    SharedRandom {
        /// Shared buffer identifier.
        id: u32,
        /// Total buffer size in bytes.
        bytes: u64,
        /// Fraction of accesses that are writes.
        write_fraction: f64,
    },
    /// Stencil sweep over a thread chunk of a shared grid: a sequential sweep
    /// where every access is accompanied by neighbour touches one `plane`
    /// before and after the current position (read-only neighbours).
    Stencil {
        /// Shared buffer identifier.
        id: u32,
        /// Total grid size in bytes.
        bytes: u64,
        /// Plane stride in bytes (distance of the ±1 neighbours).
        plane: u64,
        /// Fraction of the central accesses that are writes.
        write_fraction: f64,
    },
    /// All threads read-modify-write a small shared region (reductions,
    /// histograms); generates invalidation traffic between cores.
    ReduceShared {
        /// Shared buffer identifier.
        id: u32,
        /// Size of the contended region in bytes.
        bytes: u64,
    },
}

impl AccessPattern {
    /// Returns the nominal working-set size of the pattern in bytes.
    pub fn working_set_bytes(&self) -> u64 {
        match *self {
            AccessPattern::PrivateStream { bytes, .. }
            | AccessPattern::PrivateRandom { bytes, .. }
            | AccessPattern::SharedStream { bytes, .. }
            | AccessPattern::SharedRandom { bytes, .. }
            | AccessPattern::Stencil { bytes, .. }
            | AccessPattern::ReduceShared { bytes, .. } => bytes,
        }
    }

    /// Returns `true` when the pattern addresses thread-private memory.
    pub fn is_private(&self) -> bool {
        matches!(self, AccessPattern::PrivateStream { .. } | AccessPattern::PrivateRandom { .. })
    }

    /// Returns a copy with the working set scaled by `factor`, used by the
    /// workload-level scale knob so that a scaled-down run behaves like a
    /// smaller input class rather than like a short prefix of the full input.
    ///
    /// Buffer sizes are floored at 4 KiB (stencil plane strides at 256 bytes)
    /// so that degenerate geometries cannot arise.
    pub fn with_scaled_working_set(&self, factor: f64) -> AccessPattern {
        const MIN_BYTES: u64 = 4096;
        const MIN_PLANE: u64 = 256;
        let scale_bytes = |bytes: u64| ((bytes as f64 * factor) as u64).max(MIN_BYTES);
        let mut scaled = self.clone();
        match &mut scaled {
            AccessPattern::PrivateStream { bytes, .. }
            | AccessPattern::PrivateRandom { bytes, .. }
            | AccessPattern::SharedStream { bytes, .. }
            | AccessPattern::SharedRandom { bytes, .. }
            | AccessPattern::ReduceShared { bytes, .. } => *bytes = scale_bytes(*bytes),
            AccessPattern::Stencil { bytes, plane, .. } => {
                *bytes = scale_bytes(*bytes);
                *plane =
                    ((*plane as f64 * factor) as u64).clamp(MIN_PLANE, (*bytes / 2).max(MIN_PLANE));
            }
        }
        scaled
    }
}

/// A basic block participating in a phase, with its per-execution cost.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseBlock {
    /// The static basic block executed.
    pub block: BasicBlockId,
    /// Non-memory instructions retired per execution of the block.
    pub instructions: u32,
    /// Memory accesses performed per execution of the block.
    pub accesses: u32,
    /// Index into the owning phase's pattern list used to generate addresses.
    pub pattern: usize,
}

/// A phase: a loop nest of blocks with associated memory access patterns.
///
/// One execution of the phase performs `iterations` traversals of its block
/// list.  When `divide_by_threads` is set (the data-parallel default) the
/// iteration count is split evenly across the workload's threads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Human-readable phase name, e.g. `"x_solve"`.
    pub name: String,
    /// Access patterns referenced by the phase's blocks.
    pub patterns: Vec<AccessPattern>,
    /// The loop body.
    pub blocks: Vec<PhaseBlock>,
    /// Number of loop-body traversals per region (before scaling / splitting).
    pub iterations: u64,
    /// Whether the iterations are divided among threads (data parallel) or
    /// executed in full by every thread (redundant/replicated work).
    pub divide_by_threads: bool,
}

impl Phase {
    /// Effective per-thread iteration count for a region that executes this
    /// phase with the given `scale` factor on `threads` threads.
    ///
    /// Always at least 1 so that every thread reaches the barrier having done
    /// some work.
    pub fn iterations_per_thread(&self, scale: f64, threads: usize) -> u64 {
        let total = (self.iterations as f64 * scale).max(1.0);
        let per_thread = if self.divide_by_threads { total / threads as f64 } else { total };
        per_thread.round().max(1.0) as u64
    }
}

/// One entry of a workload's region schedule: which phase region `i` runs and
/// with which length scale relative to the phase's nominal iteration count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduleEntry {
    /// Phase executed by the region.
    pub phase: PhaseId,
    /// Multiplicative factor on the phase's iteration count.
    pub scale: f64,
}

impl ScheduleEntry {
    /// Creates a schedule entry running `phase` at its nominal length.
    pub fn new(phase: PhaseId) -> Self {
        Self { phase, scale: 1.0 }
    }

    /// Creates a schedule entry running `phase` scaled by `scale`.
    pub fn scaled(phase: PhaseId, scale: f64) -> Self {
        Self { phase, scale }
    }
}

/// Base address of thread `thread`'s private segment.
pub(crate) fn private_base(thread: usize) -> u64 {
    PRIVATE_BASE + thread as u64 * PRIVATE_SPAN
}

/// Base address of shared buffer `id`.
pub(crate) fn shared_base(id: u32) -> u64 {
    SHARED_BASE + u64::from(id) * SHARED_SPAN
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iterations_divided_among_threads() {
        let phase = Phase {
            name: "p".into(),
            patterns: vec![],
            blocks: vec![],
            iterations: 800,
            divide_by_threads: true,
        };
        assert_eq!(phase.iterations_per_thread(1.0, 8), 100);
        assert_eq!(phase.iterations_per_thread(0.5, 8), 50);
        assert_eq!(phase.iterations_per_thread(1.0, 32), 25);
    }

    #[test]
    fn iterations_at_least_one() {
        let phase = Phase {
            name: "p".into(),
            patterns: vec![],
            blocks: vec![],
            iterations: 4,
            divide_by_threads: true,
        };
        assert_eq!(phase.iterations_per_thread(0.01, 32), 1);
    }

    #[test]
    fn replicated_phase_not_divided() {
        let phase = Phase {
            name: "p".into(),
            patterns: vec![],
            blocks: vec![],
            iterations: 10,
            divide_by_threads: false,
        };
        assert_eq!(phase.iterations_per_thread(1.0, 32), 10);
    }

    #[test]
    fn address_spaces_do_not_overlap() {
        assert!(private_base(1023) + PRIVATE_SPAN <= SHARED_BASE);
        assert!(shared_base(1) > shared_base(0));
    }

    #[test]
    fn working_set_reported() {
        let p = AccessPattern::PrivateStream { bytes: 4096, stride: 64 };
        assert_eq!(p.working_set_bytes(), 4096);
        assert!(p.is_private());
        let s = AccessPattern::SharedRandom { id: 0, bytes: 1 << 20, write_fraction: 0.1 };
        assert!(!s.is_private());
    }
}
