use crate::access::{AccessKind, MemoryAccess};
use crate::block::BasicBlockId;
use crate::phase::{private_base, shared_base, AccessPattern, Phase};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One dynamic execution of a basic block together with the memory accesses
/// it performed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockExecution {
    /// Which static basic block executed.
    pub block: BasicBlockId,
    /// Total instructions retired by this execution (memory operations included).
    pub instructions: u32,
    /// Memory references issued by this execution, in program order.
    pub accesses: Vec<MemoryAccess>,
}

/// Iterator over the block executions one thread performs in one
/// inter-barrier region.
///
/// The stream is fully deterministic given the workload seed, the region
/// index and the thread id, so repeated traversals (profiling, timing
/// simulation, warmup collection) observe identical behaviour.
#[derive(Debug)]
pub struct RegionTrace {
    phase: Phase,
    cursors: Vec<PatternCursor>,
    iterations: u64,
    iteration: u64,
    block_idx: usize,
}

impl RegionTrace {
    /// Builds the trace of `thread` (out of `threads`) executing `phase` with
    /// iteration scale `scale`, using `seed` for any randomized pattern.
    pub(crate) fn new(phase: Phase, scale: f64, threads: usize, thread: usize, seed: u64) -> Self {
        let iterations = phase.iterations_per_thread(scale, threads);
        let cursors = phase
            .patterns
            .iter()
            .enumerate()
            .map(|(idx, pattern)| {
                PatternCursor::new(
                    pattern.clone(),
                    threads,
                    thread,
                    seed.wrapping_add(idx as u64 * 0x9e37_79b9),
                )
            })
            .collect();
        Self { phase, cursors, iterations, iteration: 0, block_idx: 0 }
    }

    /// Creates an empty trace (no block executions). Used for threads that do
    /// not participate in a region.
    pub fn empty() -> Self {
        Self {
            phase: Phase {
                name: String::new(),
                patterns: Vec::new(),
                blocks: Vec::new(),
                iterations: 0,
                divide_by_threads: true,
            },
            cursors: Vec::new(),
            iterations: 0,
            iteration: 0,
            block_idx: 0,
        }
    }

    /// Total number of block executions this trace will yield.
    pub fn total_block_executions(&self) -> u64 {
        self.iterations * self.phase.blocks.len() as u64
    }
}

impl Iterator for RegionTrace {
    type Item = BlockExecution;

    fn next(&mut self) -> Option<BlockExecution> {
        if self.iteration >= self.iterations || self.phase.blocks.is_empty() {
            return None;
        }
        let pb = &self.phase.blocks[self.block_idx];
        let cursor = &mut self.cursors[pb.pattern];
        let mut accesses = Vec::with_capacity(pb.accesses as usize);
        for _ in 0..pb.accesses {
            accesses.push(cursor.next_access());
        }
        let exec = BlockExecution {
            block: pb.block,
            instructions: pb.instructions + pb.accesses,
            accesses,
        };
        self.block_idx += 1;
        if self.block_idx >= self.phase.blocks.len() {
            self.block_idx = 0;
            self.iteration += 1;
        }
        Some(exec)
    }
}

/// Per-pattern address generation state.
#[derive(Debug)]
struct PatternCursor {
    pattern: AccessPattern,
    threads: usize,
    thread: usize,
    rng: SmallRng,
    /// Byte offset of the next sequential access (streaming patterns).
    position: u64,
    /// Running access count (used to interleave reads/writes deterministically).
    count: u64,
    /// Last generated address (used by read-modify-write patterns).
    last_addr: u64,
}

impl PatternCursor {
    fn new(pattern: AccessPattern, threads: usize, thread: usize, seed: u64) -> Self {
        Self {
            pattern,
            threads,
            thread,
            rng: SmallRng::seed_from_u64(seed),
            position: 0,
            count: 0,
            last_addr: 0,
        }
    }

    /// The `[base, base + len)` byte range this thread addresses for a
    /// thread-chunked shared buffer of `bytes` bytes.
    fn chunk(&self, id: u32, bytes: u64) -> (u64, u64) {
        let len = (bytes / self.threads as u64).max(64);
        let base = shared_base(id) + len * self.thread as u64;
        (base, len)
    }

    fn next_access(&mut self) -> MemoryAccess {
        let count = self.count;
        self.count += 1;
        match self.pattern {
            AccessPattern::PrivateStream { bytes, stride } => {
                let base = private_base(self.thread);
                let addr = base + self.position;
                self.position = (self.position + stride) % bytes.max(stride);
                let kind = if count % 4 == 3 { AccessKind::Write } else { AccessKind::Read };
                MemoryAccess { addr, kind, size: 8 }
            }
            AccessPattern::PrivateRandom { bytes, write_fraction } => {
                let base = private_base(self.thread);
                let off = self.rng.gen_range(0..bytes.max(8)) & !7;
                let kind = if self.rng.gen_bool(write_fraction.clamp(0.0, 1.0)) {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                MemoryAccess { addr: base + off, kind, size: 8 }
            }
            AccessPattern::SharedStream { id, bytes, stride, write_fraction, chunked } => {
                let (base, len) =
                    if chunked { self.chunk(id, bytes) } else { (shared_base(id), bytes.max(64)) };
                let addr = base + self.position;
                self.position = (self.position + stride) % len.max(stride);
                let period = if write_fraction <= 0.0 {
                    u64::MAX
                } else {
                    (1.0 / write_fraction.clamp(1e-9, 1.0)).round() as u64
                };
                let kind = if period != u64::MAX && count % period == period - 1 {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                MemoryAccess { addr, kind, size: 8 }
            }
            AccessPattern::SharedRandom { id, bytes, write_fraction } => {
                let off = self.rng.gen_range(0..bytes.max(8)) & !7;
                let kind = if self.rng.gen_bool(write_fraction.clamp(0.0, 1.0)) {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                MemoryAccess { addr: shared_base(id) + off, kind, size: 8 }
            }
            AccessPattern::Stencil { id, bytes, plane, write_fraction } => {
                let (base, len) = self.chunk(id, bytes);
                let phase = count % 3;
                let addr = match phase {
                    0 => base + self.position,
                    1 => base + (self.position + plane) % len.max(8),
                    _ => {
                        let a = base + (self.position + len - (plane % len.max(1))) % len.max(8);
                        // Centre position advances once per 3-access group.
                        self.position = (self.position + 8) % len.max(8);
                        a
                    }
                };
                let kind = if phase == 0 && self.rng.gen_bool(write_fraction.clamp(0.0, 1.0)) {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                MemoryAccess { addr, kind, size: 8 }
            }
            AccessPattern::ReduceShared { id, bytes } => {
                if count.is_multiple_of(2) {
                    let off = self.rng.gen_range(0..bytes.max(8)) & !7;
                    self.last_addr = shared_base(id) + off;
                    MemoryAccess { addr: self.last_addr, kind: AccessKind::Read, size: 8 }
                } else {
                    MemoryAccess { addr: self.last_addr, kind: AccessKind::Write, size: 8 }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::PhaseBlock;

    fn test_phase() -> Phase {
        Phase {
            name: "t".into(),
            patterns: vec![
                AccessPattern::PrivateStream { bytes: 4096, stride: 64 },
                AccessPattern::SharedRandom { id: 0, bytes: 1 << 16, write_fraction: 0.25 },
            ],
            blocks: vec![
                PhaseBlock { block: BasicBlockId(0), instructions: 10, accesses: 4, pattern: 0 },
                PhaseBlock { block: BasicBlockId(1), instructions: 6, accesses: 2, pattern: 1 },
            ],
            iterations: 16,
            divide_by_threads: true,
        }
    }

    #[test]
    fn trace_is_deterministic() {
        let a: Vec<_> = RegionTrace::new(test_phase(), 1.0, 4, 1, 42).collect();
        let b: Vec<_> = RegionTrace::new(test_phase(), 1.0, 4, 1, 42).collect();
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn different_seed_changes_random_pattern() {
        let a: Vec<_> = RegionTrace::new(test_phase(), 1.0, 4, 1, 42).collect();
        let b: Vec<_> = RegionTrace::new(test_phase(), 1.0, 4, 1, 43).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn execution_counts_match_iterations() {
        let trace = RegionTrace::new(test_phase(), 1.0, 4, 0, 1);
        let expected = trace.total_block_executions();
        assert_eq!(trace.count() as u64, expected);
        // 16 iterations / 4 threads = 4 per thread, 2 blocks each.
        assert_eq!(expected, 8);
    }

    #[test]
    fn instructions_include_memory_ops() {
        let exec = RegionTrace::new(test_phase(), 1.0, 4, 0, 1).next().unwrap();
        assert_eq!(exec.instructions, 14);
        assert_eq!(exec.accesses.len(), 4);
    }

    #[test]
    fn private_addresses_disjoint_across_threads() {
        let a: Vec<_> = RegionTrace::new(test_phase(), 1.0, 4, 0, 42)
            .flat_map(|e| e.accesses)
            .filter(|a| a.addr < crate::phase::SHARED_BASE)
            .map(|a| a.addr)
            .collect();
        let b: Vec<_> = RegionTrace::new(test_phase(), 1.0, 4, 1, 42)
            .flat_map(|e| e.accesses)
            .filter(|a| a.addr < crate::phase::SHARED_BASE)
            .map(|a| a.addr)
            .collect();
        assert!(a.iter().all(|x| !b.contains(x)));
    }

    #[test]
    fn empty_trace_yields_nothing() {
        assert_eq!(RegionTrace::empty().count(), 0);
    }
}
