//! Synthetic barrier-synchronized multi-threaded workload models.
//!
//! The BarrierPoint paper instruments real NPB / PARSEC binaries with a Pin
//! tool to obtain, for every *inter-barrier region*, each thread's dynamic
//! basic-block stream and memory-reference stream.  This crate provides the
//! equivalent substrate without binary instrumentation: deterministic,
//! phase-structured workload models that emit exactly those streams.
//!
//! The central abstraction is the [`Workload`] trait.  A workload exposes a
//! fixed number of inter-barrier regions (the code executed between two
//! consecutive global barriers) and, for every `(region, thread)` pair, an
//! iterator of [`BlockExecution`]s — a basic block execution together with the
//! memory accesses it performs.  Downstream crates consume these streams to
//! build signatures (`bp-signature`), to drive timing simulation (`bp-sim`)
//! and to collect warmup data (`bp-warmup`).
//!
//! Analyses attach to the stream through the **trace-observer engine**:
//! implement [`TraceObserver`] and hand any number of observers to
//! [`drive`], which generates one thread's full trace exactly once and fans
//! every block execution out to all of them — this is how a cold pipeline
//! profiles signatures and collects MRU warmup state from a *single* walk
//! instead of one walk per consumer.
//!
//! The [`kernels`] module contains models of the benchmarks evaluated in the
//! paper (NPB bt, cg, ft, is, lu, mg, sp and PARSEC bodytrack), matching their
//! dynamic barrier counts (Figure 1 / Table III) and their qualitative phase
//! structure.  The [`SyntheticWorkload`] engine underneath is fully
//! data-driven, so custom workloads can be assembled with
//! [`SyntheticWorkloadBuilder`].
//!
//! # Example
//!
//! ```
//! use bp_workload::{Benchmark, WorkloadConfig, Workload};
//!
//! let config = WorkloadConfig::new(8).with_scale(0.1);
//! let workload = Benchmark::NpbCg.build(&config);
//! assert_eq!(workload.num_threads(), 8);
//! assert_eq!(workload.num_regions(), 46);
//!
//! // Stream the block executions of thread 0 in region 3.
//! let instructions: u64 = workload
//!     .region_trace(3, 0)
//!     .map(|exec| u64::from(exec.instructions))
//!     .sum();
//! assert!(instructions > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod access;
mod block;
pub mod kernels;
mod observer;
mod phase;
mod region;
mod synthetic;
mod workload;

pub use access::{AccessKind, MemoryAccess, CACHE_LINE_BYTES};
pub use block::{BasicBlock, BasicBlockId, BlockTable};
pub use kernels::suite::Benchmark;
pub use observer::{drive, drive_segment, CheckpointError, CheckpointObserver, TraceObserver};
pub use phase::{AccessPattern, Phase, PhaseBlock, PhaseId, ScheduleEntry};
pub use region::{BlockExecution, RegionTrace};
pub use synthetic::{SyntheticWorkload, SyntheticWorkloadBuilder};
pub use workload::{FingerprintHasher, Workload, WorkloadConfig};
