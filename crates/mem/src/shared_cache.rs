use crate::config::CacheConfig;
use serde::{Deserialize, Serialize};

/// Directory information attached to a line in the shared last-level cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirEntry {
    /// Whether the L3 copy is newer than DRAM.
    pub dirty: bool,
    /// Bitmask of cores that may hold the line in their private caches.
    pub sharers: u64,
    /// Core holding the line in Modified state, if any.
    pub owner: Option<u32>,
}

impl DirEntry {
    /// An entry with no private copies.
    pub fn clean() -> Self {
        Self { dirty: false, sharers: 0, owner: None }
    }

    /// Returns `true` if `core` is marked as a sharer.
    pub fn has_sharer(&self, core: usize) -> bool {
        self.sharers & (1u64 << core) != 0
    }
}

/// A line evicted from the shared cache; the caller must back-invalidate the
/// listed sharers to preserve inclusion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedShared {
    /// Line address of the victim.
    pub line: u64,
    /// Whether the line (or a private copy) must be written back to memory.
    pub dirty: bool,
    /// Private caches that may still hold the line.
    pub sharers: u64,
    /// Core owning a Modified copy, if any.
    pub owner: Option<u32>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct DirWay {
    line: u64,
    valid: bool,
    lru: u64,
    entry: DirEntry,
}

impl DirWay {
    fn invalid() -> Self {
        Self { line: 0, valid: false, lru: 0, entry: DirEntry::clean() }
    }
}

/// An inclusive, set-associative shared last-level cache with an embedded
/// full-map MSI directory (up to 64 cores).
///
/// The BarrierPoint machine (Table I) shares one such cache among the eight
/// cores of a socket; the directory tracks which cores hold private copies so
/// that writes can invalidate remote sharers and reads can fetch dirty data
/// from a remote owner.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SharedCache {
    sets: Vec<Vec<DirWay>>,
    num_sets: usize,
    latency: u64,
    tick: u64,
    /// Socket-interleaving factor: set selection uses `line / interleave` so
    /// that lines homed to this socket (every `interleave`-th line) spread
    /// over all sets instead of aliasing into a fraction of them.
    interleave: u64,
}

impl SharedCache {
    /// Builds an empty shared cache with the given geometry.
    pub fn new(config: &CacheConfig, line_bytes: u64) -> Self {
        Self::with_interleave(config, line_bytes, 1)
    }

    /// Builds an empty shared cache whose set index is computed from
    /// `line / interleave`, for use in a machine that interleaves lines
    /// across `interleave` sockets.
    pub fn with_interleave(config: &CacheConfig, line_bytes: u64, interleave: u64) -> Self {
        let num_sets = config.num_sets(line_bytes);
        Self {
            sets: vec![vec![DirWay::invalid(); config.associativity]; num_sets],
            num_sets,
            latency: config.latency_cycles,
            tick: 0,
            interleave: interleave.max(1),
        }
    }

    /// Access latency in cycles.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    fn set_index(&self, line: u64) -> usize {
        ((line / self.interleave) % self.num_sets as u64) as usize
    }

    /// Looks up a line, refreshing its LRU position.
    pub fn lookup(&mut self, line: u64) -> Option<DirEntry> {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_index(line);
        for way in &mut self.sets[set] {
            if way.valid && way.line == line {
                way.lru = tick;
                return Some(way.entry);
            }
        }
        None
    }

    /// Reads a line's directory entry without touching LRU state.
    pub fn peek(&self, line: u64) -> Option<DirEntry> {
        let set = self.set_index(line);
        self.sets[set].iter().find(|w| w.valid && w.line == line).map(|w| w.entry)
    }

    /// Returns `true` if `line` is resident.
    pub fn contains(&self, line: u64) -> bool {
        self.peek(line).is_some()
    }

    /// Inserts a line with a fresh directory entry, evicting the LRU victim
    /// of the set if necessary.
    pub fn insert(&mut self, line: u64, entry: DirEntry) -> Option<EvictedShared> {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_index(line);
        if let Some(way) = self.sets[set].iter_mut().find(|w| w.valid && w.line == line) {
            way.entry = entry;
            way.lru = tick;
            return None;
        }
        if let Some(way) = self.sets[set].iter_mut().find(|w| !w.valid) {
            *way = DirWay { line, valid: true, lru: tick, entry };
            return None;
        }
        // `map_or(0, ..)` instead of an unwrap: associativity is at least 1,
        // and way 0 is the correct victim for a hypothetical 1-way tie.
        let victim_idx =
            self.sets[set].iter().enumerate().min_by_key(|(_, w)| w.lru).map_or(0, |(i, _)| i);
        let victim = self.sets[set][victim_idx];
        self.sets[set][victim_idx] = DirWay { line, valid: true, lru: tick, entry };
        Some(EvictedShared {
            line: victim.line,
            dirty: victim.entry.dirty || victim.entry.owner.is_some(),
            sharers: victim.entry.sharers,
            owner: victim.entry.owner,
        })
    }

    /// Applies `f` to the directory entry of `line`; returns `false` if the
    /// line is not resident.
    pub fn update<F: FnOnce(&mut DirEntry)>(&mut self, line: u64, f: F) -> bool {
        let set = self.set_index(line);
        if let Some(way) = self.sets[set].iter_mut().find(|w| w.valid && w.line == line) {
            f(&mut way.entry);
            true
        } else {
            false
        }
    }

    /// Removes `line`; returns its entry if it was resident.
    pub fn invalidate(&mut self, line: u64) -> Option<DirEntry> {
        let set = self.set_index(line);
        for way in &mut self.sets[set] {
            if way.valid && way.line == line {
                way.valid = false;
                return Some(way.entry);
            }
        }
        None
    }

    /// Drops all lines.
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            for way in set {
                *way = DirWay::invalid();
            }
        }
        self.tick = 0;
    }

    /// Number of resident lines.
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(|s| s.iter().filter(|w| w.valid).count()).sum()
    }

    /// Iterates over resident lines as `(line, entry)`.
    pub fn valid_lines(&self) -> impl Iterator<Item = (u64, DirEntry)> + '_ {
        self.sets.iter().flatten().filter(|w| w.valid).map(|w| (w.line, w.entry))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SharedCache {
        // 2 sets x 2 ways.
        SharedCache::new(&CacheConfig::new(256, 2, 30), 64)
    }

    #[test]
    fn insert_lookup_roundtrip() {
        let mut c = small();
        let entry = DirEntry { dirty: true, sharers: 0b101, owner: Some(2) };
        assert!(c.insert(10, entry).is_none());
        assert_eq!(c.lookup(10), Some(entry));
        assert!(c.peek(10).unwrap().has_sharer(0));
        assert!(!c.peek(10).unwrap().has_sharer(1));
    }

    #[test]
    fn eviction_reports_sharers_for_back_invalidation() {
        let mut c = small();
        // Lines 0, 2, 4 map to set 0.
        c.insert(0, DirEntry { dirty: false, sharers: 0b11, owner: None });
        c.insert(2, DirEntry::clean());
        c.lookup(0);
        let victim = c.insert(4, DirEntry::clean()).expect("eviction");
        assert_eq!(victim.line, 2);
        let victim2 = c.insert(6, DirEntry::clean()).expect("eviction");
        assert_eq!(victim2.line, 0);
        assert_eq!(victim2.sharers, 0b11);
    }

    #[test]
    fn owner_implies_dirty_eviction() {
        let mut c = small();
        c.insert(0, DirEntry { dirty: false, sharers: 0b1, owner: Some(0) });
        c.insert(2, DirEntry::clean());
        c.lookup(2);
        let victim = c.insert(4, DirEntry::clean()).expect("eviction");
        assert_eq!(victim.line, 0);
        assert!(victim.dirty);
    }

    #[test]
    fn update_in_place() {
        let mut c = small();
        c.insert(1, DirEntry::clean());
        assert!(c.update(1, |e| {
            e.sharers |= 0b100;
            e.dirty = true;
        }));
        assert_eq!(c.peek(1).unwrap().sharers, 0b100);
        assert!(c.peek(1).unwrap().dirty);
        assert!(!c.update(99, |_| {}));
    }

    #[test]
    fn invalidate_and_clear() {
        let mut c = small();
        c.insert(1, DirEntry::clean());
        c.insert(3, DirEntry::clean());
        assert!(c.invalidate(1).is_some());
        assert!(c.invalidate(1).is_none());
        assert_eq!(c.occupancy(), 1);
        c.clear();
        assert_eq!(c.occupancy(), 0);
    }
}
