use crate::config::CacheConfig;
use serde::{Deserialize, Serialize};

/// MSI coherence state of a cached line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LineState {
    /// The line is owned exclusively and has been written.
    Modified,
    /// The line is (potentially) shared, read-only, and clean.
    Shared,
    /// The line is not present.
    Invalid,
}

impl LineState {
    /// Returns `true` if the state holds valid data.
    pub fn is_valid(self) -> bool {
        !matches!(self, LineState::Invalid)
    }
}

/// A line evicted from a cache by an insertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine {
    /// Line address (byte address divided by the line size).
    pub line: u64,
    /// Whether the evicted copy was modified and must be written back.
    pub dirty: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Way {
    line: u64,
    state: LineState,
    /// Monotonic timestamp of the last touch; larger is more recent.
    lru: u64,
}

impl Way {
    fn invalid() -> Self {
        Self { line: 0, state: LineState::Invalid, lru: 0 }
    }
}

/// A set-associative cache with true-LRU replacement and per-line MSI state.
///
/// The cache operates on *line addresses* (byte address / line size); address
/// splitting into sets uses the low bits of the line address.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cache {
    sets: Vec<Vec<Way>>,
    num_sets: usize,
    associativity: usize,
    latency: u64,
    tick: u64,
}

impl Cache {
    /// Builds an empty (all-invalid) cache with the given geometry.
    pub fn new(config: &CacheConfig, line_bytes: u64) -> Self {
        let num_sets = config.num_sets(line_bytes);
        Self {
            sets: vec![vec![Way::invalid(); config.associativity]; num_sets],
            num_sets,
            associativity: config.associativity,
            latency: config.latency_cycles,
            tick: 0,
        }
    }

    /// Access latency of this cache level in cycles.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Total number of ways in the cache.
    pub fn capacity_lines(&self) -> usize {
        self.num_sets * self.associativity
    }

    fn set_index(&self, line: u64) -> usize {
        (line % self.num_sets as u64) as usize
    }

    /// Looks up `line`; on a hit the LRU position is refreshed and the line's
    /// state is returned.
    pub fn lookup(&mut self, line: u64) -> Option<LineState> {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_index(line);
        for way in &mut self.sets[set] {
            if way.state.is_valid() && way.line == line {
                way.lru = tick;
                return Some(way.state);
            }
        }
        None
    }

    /// Returns the state of `line` without updating replacement metadata.
    pub fn peek(&self, line: u64) -> Option<LineState> {
        let set = self.set_index(line);
        self.sets[set].iter().find(|w| w.state.is_valid() && w.line == line).map(|w| w.state)
    }

    /// Returns `true` if `line` is present (any valid state).
    pub fn contains(&self, line: u64) -> bool {
        self.peek(line).is_some()
    }

    /// Inserts `line` with `state`, evicting the LRU way of its set if needed.
    /// If the line is already present its state is overwritten in place.
    ///
    /// Returns the victim line, if a valid line had to be evicted.
    pub fn insert(&mut self, line: u64, state: LineState) -> Option<EvictedLine> {
        debug_assert!(state.is_valid(), "inserting an Invalid line makes no sense");
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_index(line);
        // Already present: update in place.
        if let Some(way) = self.sets[set].iter_mut().find(|w| w.state.is_valid() && w.line == line)
        {
            way.state = state;
            way.lru = tick;
            return None;
        }
        // Free way?
        if let Some(way) = self.sets[set].iter_mut().find(|w| !w.state.is_valid()) {
            *way = Way { line, state, lru: tick };
            return None;
        }
        // Evict LRU.
        // `map_or(0, ..)` instead of an unwrap: associativity is at least 1,
        // and way 0 is the correct victim for a hypothetical 1-way tie.
        let victim_idx =
            self.sets[set].iter().enumerate().min_by_key(|(_, w)| w.lru).map_or(0, |(i, _)| i);
        let victim = self.sets[set][victim_idx];
        self.sets[set][victim_idx] = Way { line, state, lru: tick };
        Some(EvictedLine { line: victim.line, dirty: victim.state == LineState::Modified })
    }

    /// Changes the state of `line` if present; returns `true` on success.
    pub fn set_state(&mut self, line: u64, state: LineState) -> bool {
        let set = self.set_index(line);
        if let Some(way) = self.sets[set].iter_mut().find(|w| w.state.is_valid() && w.line == line)
        {
            if state.is_valid() {
                way.state = state;
            } else {
                way.state = LineState::Invalid;
            }
            true
        } else {
            false
        }
    }

    /// Invalidates `line` if present.  Returns `Some(dirty)` when a valid copy
    /// was removed, where `dirty` indicates the copy was modified.
    pub fn invalidate(&mut self, line: u64) -> Option<bool> {
        let set = self.set_index(line);
        for way in &mut self.sets[set] {
            if way.state.is_valid() && way.line == line {
                let dirty = way.state == LineState::Modified;
                way.state = LineState::Invalid;
                return Some(dirty);
            }
        }
        None
    }

    /// Invalidates every line, returning the cache to its cold state.
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            for way in set {
                *way = Way::invalid();
            }
        }
        self.tick = 0;
    }

    /// Number of valid lines currently held.
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(|set| set.iter().filter(|w| w.state.is_valid()).count()).sum()
    }

    /// Iterates over all valid lines as `(line, state)` pairs.
    pub fn valid_lines(&self) -> impl Iterator<Item = (u64, LineState)> + '_ {
        self.sets.iter().flatten().filter(|w| w.state.is_valid()).map(|w| (w.line, w.state))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> Cache {
        // 4 sets x 2 ways.
        Cache::new(&CacheConfig::new(512, 2, 3), 64)
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small_cache();
        assert_eq!(c.lookup(10), None);
        assert_eq!(c.insert(10, LineState::Shared), None);
        assert_eq!(c.lookup(10), Some(LineState::Shared));
        assert_eq!(c.latency(), 3);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small_cache();
        // Lines 0, 4, 8 all map to set 0 (4 sets).
        c.insert(0, LineState::Shared);
        c.insert(4, LineState::Shared);
        // Touch 0 so 4 becomes LRU.
        c.lookup(0);
        let evicted = c.insert(8, LineState::Shared).expect("eviction");
        assert_eq!(evicted.line, 4);
        assert!(!evicted.dirty);
        assert!(c.contains(0) && c.contains(8) && !c.contains(4));
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = small_cache();
        c.insert(0, LineState::Modified);
        c.insert(4, LineState::Shared);
        c.lookup(4);
        let evicted = c.insert(8, LineState::Shared).expect("eviction");
        assert_eq!(evicted.line, 0);
        assert!(evicted.dirty);
    }

    #[test]
    fn insert_existing_updates_state_without_eviction() {
        let mut c = small_cache();
        c.insert(0, LineState::Shared);
        assert_eq!(c.insert(0, LineState::Modified), None);
        assert_eq!(c.peek(0), Some(LineState::Modified));
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn invalidate_reports_dirtiness() {
        let mut c = small_cache();
        c.insert(0, LineState::Modified);
        c.insert(1, LineState::Shared);
        assert_eq!(c.invalidate(0), Some(true));
        assert_eq!(c.invalidate(1), Some(false));
        assert_eq!(c.invalidate(2), None);
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn clear_empties_cache() {
        let mut c = small_cache();
        c.insert(0, LineState::Shared);
        c.insert(1, LineState::Modified);
        c.clear();
        assert_eq!(c.occupancy(), 0);
        assert_eq!(c.lookup(0), None);
    }

    #[test]
    fn capacity_matches_geometry() {
        assert_eq!(small_cache().capacity_lines(), 8);
    }

    #[test]
    fn valid_lines_iterates_everything() {
        let mut c = small_cache();
        c.insert(3, LineState::Shared);
        c.insert(7, LineState::Modified);
        let mut lines: Vec<_> = c.valid_lines().collect();
        lines.sort_by_key(|(line, _)| *line);
        assert_eq!(lines, vec![(3, LineState::Shared), (7, LineState::Modified)]);
    }
}
