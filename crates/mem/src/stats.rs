use serde::{Deserialize, Serialize};

/// Event counters accumulated by a [`crate::MemoryHierarchy`].
///
/// The counters cover data accesses, instruction fetches, where accesses were
/// serviced, coherence activity and DRAM traffic.  The paper's evaluation
/// reports DRAM APKI (DRAM accesses per thousand instructions); use
/// [`MemoryStats::dram_apki`] with the instruction count tracked by the
/// timing simulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryStats {
    /// Data accesses (loads + stores) issued.
    pub data_accesses: u64,
    /// Stores issued.
    pub writes: u64,
    /// Instruction fetches issued.
    pub instruction_fetches: u64,
    /// Accesses serviced by the L1 (data or instruction).
    pub l1_hits: u64,
    /// Accesses serviced by the private L2.
    pub l2_hits: u64,
    /// Accesses serviced by a shared L3 (local or remote socket).
    pub l3_hits: u64,
    /// Accesses serviced by another core's private cache (dirty data transfer).
    pub remote_cache_hits: u64,
    /// Accesses serviced by DRAM.
    pub dram_accesses: u64,
    /// Dirty lines written back to DRAM.
    pub dram_writebacks: u64,
    /// Private-cache lines invalidated by coherence actions.
    pub invalidations: u64,
    /// Write upgrades (Shared → Modified) that required a directory round trip.
    pub upgrades: u64,
}

impl MemoryStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total accesses (data + instruction fetches).
    pub fn total_accesses(&self) -> u64 {
        self.data_accesses + self.instruction_fetches
    }

    /// DRAM accesses per thousand instructions.
    ///
    /// Returns 0.0 when `instructions` is zero.
    pub fn dram_apki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.dram_accesses as f64 * 1000.0 / instructions as f64
        }
    }

    /// L1 miss ratio over all accesses.
    pub fn l1_miss_ratio(&self) -> f64 {
        let total = self.total_accesses();
        if total == 0 {
            0.0
        } else {
            1.0 - self.l1_hits as f64 / total as f64
        }
    }

    /// Adds `other`'s counters into `self`.
    pub fn merge(&mut self, other: &MemoryStats) {
        self.data_accesses += other.data_accesses;
        self.writes += other.writes;
        self.instruction_fetches += other.instruction_fetches;
        self.l1_hits += other.l1_hits;
        self.l2_hits += other.l2_hits;
        self.l3_hits += other.l3_hits;
        self.remote_cache_hits += other.remote_cache_hits;
        self.dram_accesses += other.dram_accesses;
        self.dram_writebacks += other.dram_writebacks;
        self.invalidations += other.invalidations;
        self.upgrades += other.upgrades;
    }

    /// Returns the difference `self - earlier`, counter by counter.
    ///
    /// Useful for extracting per-region statistics from cumulative counters.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` has larger counters than `self`.
    pub fn delta_since(&self, earlier: &MemoryStats) -> MemoryStats {
        MemoryStats {
            data_accesses: self.data_accesses - earlier.data_accesses,
            writes: self.writes - earlier.writes,
            instruction_fetches: self.instruction_fetches - earlier.instruction_fetches,
            l1_hits: self.l1_hits - earlier.l1_hits,
            l2_hits: self.l2_hits - earlier.l2_hits,
            l3_hits: self.l3_hits - earlier.l3_hits,
            remote_cache_hits: self.remote_cache_hits - earlier.remote_cache_hits,
            dram_accesses: self.dram_accesses - earlier.dram_accesses,
            dram_writebacks: self.dram_writebacks - earlier.dram_writebacks,
            invalidations: self.invalidations - earlier.invalidations,
            upgrades: self.upgrades - earlier.upgrades,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apki_math() {
        let stats = MemoryStats { dram_accesses: 50, ..Default::default() };
        assert!((stats.dram_apki(10_000) - 5.0).abs() < 1e-12);
        assert_eq!(stats.dram_apki(0), 0.0);
    }

    #[test]
    fn merge_and_delta_are_inverses() {
        let a =
            MemoryStats { data_accesses: 10, l1_hits: 8, dram_accesses: 1, ..Default::default() };
        let b = MemoryStats { data_accesses: 5, l1_hits: 4, writes: 2, ..Default::default() };
        let mut sum = a;
        sum.merge(&b);
        assert_eq!(sum.delta_since(&a), b);
        assert_eq!(sum.delta_since(&b), a);
    }

    #[test]
    fn miss_ratio() {
        let stats = MemoryStats { data_accesses: 100, l1_hits: 80, ..Default::default() };
        assert!((stats.l1_miss_ratio() - 0.2).abs() < 1e-12);
        assert_eq!(MemoryStats::default().l1_miss_ratio(), 0.0);
    }
}
