//! Multi-core memory hierarchy substrate for the BarrierPoint reproduction.
//!
//! The BarrierPoint paper evaluates its sampling methodology on the Sniper
//! simulator configured as in Table I: per-core L1 instruction and data
//! caches, per-core L2 caches, an L3 cache shared by the eight cores of a
//! socket, an MSI directory coherence protocol, and a simple DRAM model.
//! This crate implements that hierarchy from scratch:
//!
//! * [`Cache`] — a set-associative, true-LRU cache with per-line MSI state,
//! * [`SharedCache`] — an inclusive last-level cache with an embedded
//!   directory tracking per-core sharers and the modified owner,
//! * [`MemoryHierarchy`] — the full multi-socket hierarchy that routes a
//!   core's loads, stores and instruction fetches through the levels,
//!   maintains coherence, and reports access latency and DRAM traffic,
//! * [`HierarchySnapshot`] — whole-hierarchy state snapshots used for the
//!   "perfect warmup" experiments and for checkpoint-style warmup.
//!
//! Two stock configurations are provided: [`MemoryConfig::table1`], the
//! paper's machine, and [`MemoryConfig::scaled`], a proportionally scaled-down
//! hierarchy matched to the scaled-down synthetic workloads of `bp-workload`
//! (see DESIGN.md for the substitution rationale).
//!
//! # Example
//!
//! ```
//! use bp_mem::{MemoryConfig, MemoryHierarchy};
//!
//! let config = MemoryConfig::scaled();
//! let mut hierarchy = MemoryHierarchy::new(&config, 8);
//! let cold = hierarchy.access(0, 0x1000, false);
//! let warm = hierarchy.access(0, 0x1000, false);
//! assert!(cold.latency > warm.latency);
//! assert!(cold.dram_access && !warm.dram_access);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod config;
mod hierarchy;
mod shared_cache;
mod stats;

pub use cache::{Cache, EvictedLine, LineState};
pub use config::{CacheConfig, MemoryConfig};
pub use hierarchy::{AccessResult, HierarchySnapshot, MemoryHierarchy, ServiceLevel};
pub use shared_cache::SharedCache;
pub use stats::MemoryStats;
