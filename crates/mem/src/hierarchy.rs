use crate::cache::{Cache, LineState};
use crate::config::MemoryConfig;
use crate::shared_cache::{DirEntry, SharedCache};
use crate::stats::MemoryStats;
use serde::{Deserialize, Serialize};

/// Which level of the hierarchy serviced an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServiceLevel {
    /// Hit in the core's own L1 (data or instruction).
    L1,
    /// Hit in the core's private L2.
    L2,
    /// Serviced by a shared L3 (local or remote socket) or by the directory
    /// (write upgrades).
    L3,
    /// Serviced by another core's private cache (dirty-data transfer).
    RemoteCache,
    /// Serviced by DRAM.
    Dram,
}

/// Result of routing one access through the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Latency of the access in core cycles.
    pub latency: u64,
    /// Level that provided the data.
    pub level: ServiceLevel,
    /// Whether DRAM was accessed.
    pub dram_access: bool,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct CoreCaches {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
}

/// A complete snapshot of every cache and directory in the hierarchy.
///
/// Snapshots implement the "perfect warmup" and checkpoint-warmup modes of
/// the paper: capture the state at a barrier during the full run and restore
/// it before simulating the corresponding barrierpoint.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HierarchySnapshot {
    cores: Vec<CoreCaches>,
    sockets: Vec<SharedCache>,
}

impl HierarchySnapshot {
    /// Approximate size of the snapshot in cache lines (sum of occupancies).
    pub fn resident_lines(&self) -> usize {
        self.cores
            .iter()
            .map(|c| c.l1i.occupancy() + c.l1d.occupancy() + c.l2.occupancy())
            .sum::<usize>()
            + self.sockets.iter().map(|s| s.occupancy()).sum::<usize>()
    }
}

/// The multi-socket memory hierarchy of the simulated machine.
///
/// Topology follows Table I of the paper: each core has private L1I/L1D and
/// L2 caches; every `cores_per_socket` cores share an inclusive L3 with a
/// full-map MSI directory; lines are interleaved across sockets (the home
/// socket of a line is `line % num_sockets`), so the aggregate LLC capacity
/// grows with the socket count — the effect behind CG's superlinear scaling
/// in Figure 8.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    config: MemoryConfig,
    cores: Vec<CoreCaches>,
    sockets: Vec<SharedCache>,
    stats: MemoryStats,
}

impl MemoryHierarchy {
    /// Builds a cold hierarchy for `num_cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` is zero or exceeds 64 (the directory uses a
    /// 64-bit sharer mask).
    pub fn new(config: &MemoryConfig, num_cores: usize) -> Self {
        assert!(num_cores > 0 && num_cores <= 64, "1..=64 cores supported");
        let cores = (0..num_cores)
            .map(|_| CoreCaches {
                l1i: Cache::new(&config.l1i, config.line_bytes),
                l1d: Cache::new(&config.l1d, config.line_bytes),
                l2: Cache::new(&config.l2, config.line_bytes),
            })
            .collect();
        let num_sockets = config.num_sockets(num_cores) as u64;
        let sockets = (0..config.num_sockets(num_cores))
            .map(|_| SharedCache::with_interleave(&config.l3, config.line_bytes, num_sockets))
            .collect();
        Self { config: *config, cores, sockets, stats: MemoryStats::new() }
    }

    /// The hierarchy's configuration.
    pub fn config(&self) -> &MemoryConfig {
        &self.config
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Accumulated statistics since construction or the last reset.
    pub fn stats(&self) -> &MemoryStats {
        &self.stats
    }

    /// Resets the statistics counters (cache contents are untouched).
    pub fn reset_stats(&mut self) {
        self.stats = MemoryStats::new();
    }

    /// Drops all cached state, returning the hierarchy to cold caches.
    pub fn clear(&mut self) {
        for core in &mut self.cores {
            core.l1i.clear();
            core.l1d.clear();
            core.l2.clear();
        }
        for socket in &mut self.sockets {
            socket.clear();
        }
    }

    /// Captures the complete cache/directory state.
    pub fn snapshot(&self) -> HierarchySnapshot {
        HierarchySnapshot { cores: self.cores.clone(), sockets: self.sockets.clone() }
    }

    /// Restores a previously captured state.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot was taken from a hierarchy with a different
    /// core or socket count.
    pub fn restore(&mut self, snapshot: &HierarchySnapshot) {
        assert_eq!(snapshot.cores.len(), self.cores.len(), "core count mismatch");
        assert_eq!(snapshot.sockets.len(), self.sockets.len(), "socket count mismatch");
        self.cores = snapshot.cores.clone();
        self.sockets = snapshot.sockets.clone();
    }

    fn socket_of_core(&self, core: usize) -> usize {
        core / self.config.cores_per_socket
    }

    fn home_socket(&self, line: u64) -> usize {
        (line % self.sockets.len() as u64) as usize
    }

    /// Issues a data access (load or store) from `core` to byte address `addr`.
    pub fn access(&mut self, core: usize, addr: u64, is_write: bool) -> AccessResult {
        let line = addr / self.config.line_bytes;
        self.stats.data_accesses += 1;
        if is_write {
            self.stats.writes += 1;
        }
        self.access_line(core, line, is_write, false)
    }

    /// Issues an instruction fetch from `core` at byte address `addr`.
    pub fn fetch_instruction(&mut self, core: usize, addr: u64) -> AccessResult {
        let line = addr / self.config.line_bytes;
        self.stats.instruction_fetches += 1;
        self.access_line(core, line, false, true)
    }

    fn access_line(
        &mut self,
        core: usize,
        line: u64,
        is_write: bool,
        is_instr: bool,
    ) -> AccessResult {
        let l1_latency =
            if is_instr { self.cores[core].l1i.latency() } else { self.cores[core].l1d.latency() };

        // --- L1 ---
        let l1_state = if is_instr {
            self.cores[core].l1i.lookup(line)
        } else {
            self.cores[core].l1d.lookup(line)
        };
        if let Some(state) = l1_state {
            if !is_write || state == LineState::Modified {
                self.stats.l1_hits += 1;
                return AccessResult {
                    latency: l1_latency,
                    level: ServiceLevel::L1,
                    dram_access: false,
                };
            }
            // Write hit on a Shared line: upgrade through the directory.
            let latency = l1_latency + self.upgrade(core, line);
            self.cores[core].l1d.set_state(line, LineState::Modified);
            self.cores[core].l2.set_state(line, LineState::Modified);
            self.stats.upgrades += 1;
            return AccessResult { latency, level: ServiceLevel::L3, dram_access: false };
        }

        // --- L2 ---
        let l2_latency = self.cores[core].l2.latency();
        if let Some(state) = self.cores[core].l2.lookup(line) {
            if !is_write || state == LineState::Modified {
                self.stats.l2_hits += 1;
                let fill_state = state;
                self.fill_l1(core, line, fill_state, is_instr);
                return AccessResult {
                    latency: l1_latency + l2_latency,
                    level: ServiceLevel::L2,
                    dram_access: false,
                };
            }
            // Write on a Shared L2 line: upgrade.
            let latency = l1_latency + l2_latency + self.upgrade(core, line);
            self.cores[core].l2.set_state(line, LineState::Modified);
            self.fill_l1(core, line, LineState::Modified, is_instr);
            self.stats.upgrades += 1;
            return AccessResult { latency, level: ServiceLevel::L3, dram_access: false };
        }

        // --- L3 / directory ---
        let home = self.home_socket(line);
        let local_socket = self.socket_of_core(core);
        let mut latency = l1_latency + l2_latency + self.sockets[home].latency();
        if home != local_socket {
            latency += self.config.remote_penalty_cycles;
        }

        let entry = self.sockets[home].lookup(line);
        let (level, dram_access) = match entry {
            Some(entry) => {
                let mut level = ServiceLevel::L3;
                // Dirty data in another core's cache must be fetched from there.
                if let Some(owner) = entry.owner {
                    if owner as usize != core {
                        latency += self.config.remote_penalty_cycles;
                        level = ServiceLevel::RemoteCache;
                        self.stats.remote_cache_hits += 1;
                        let owner = owner as usize;
                        if is_write {
                            self.invalidate_private(owner, line);
                        } else {
                            self.cores[owner].l1d.set_state(line, LineState::Shared);
                            self.cores[owner].l2.set_state(line, LineState::Shared);
                        }
                        self.sockets[home].update(line, |e| {
                            e.dirty = true;
                            if is_write {
                                e.sharers = 1 << core;
                                e.owner = Some(core as u32);
                            } else {
                                e.sharers |= 1 << core;
                                e.owner = None;
                            }
                        });
                    } else {
                        // The requester itself is the registered owner (its L1/L2
                        // copy was silently evicted); just refresh the directory.
                        self.stats.l3_hits += 1;
                        self.sockets[home].update(line, |e| {
                            e.sharers |= 1 << core;
                            if is_write {
                                e.owner = Some(core as u32);
                            }
                        });
                    }
                } else {
                    self.stats.l3_hits += 1;
                    if is_write {
                        let others = entry.sharers & !(1 << core);
                        self.invalidate_sharers(others, line);
                        self.sockets[home].update(line, |e| {
                            e.sharers = 1 << core;
                            e.owner = Some(core as u32);
                        });
                    } else {
                        self.sockets[home].update(line, |e| {
                            e.sharers |= 1 << core;
                        });
                    }
                }
                if entry.owner.map(|o| o as usize) == Some(core) && level == ServiceLevel::L3 {
                    // handled above
                }
                (level, false)
            }
            None => {
                // DRAM fill.
                latency += self.config.dram_latency_cycles;
                self.stats.dram_accesses += 1;
                let new_entry = DirEntry {
                    dirty: false,
                    sharers: 1 << core,
                    owner: if is_write { Some(core as u32) } else { None },
                };
                if let Some(victim) = self.sockets[home].insert(line, new_entry) {
                    self.back_invalidate(victim.sharers, victim.line);
                    if victim.dirty {
                        self.stats.dram_writebacks += 1;
                    }
                }
                (ServiceLevel::Dram, true)
            }
        };

        // Fill the private caches.
        let fill_state = if is_write { LineState::Modified } else { LineState::Shared };
        self.fill_l2(core, line, fill_state);
        self.fill_l1(core, line, fill_state, is_instr);

        AccessResult { latency, level, dram_access }
    }

    /// Directory round trip invalidating all other sharers for a write upgrade.
    /// Returns the extra latency.
    fn upgrade(&mut self, core: usize, line: u64) -> u64 {
        let home = self.home_socket(line);
        let local = self.socket_of_core(core);
        let mut latency = self.sockets[home].latency();
        if home != local {
            latency += self.config.remote_penalty_cycles;
        }
        let sharers = self.sockets[home].peek(line).map(|e| e.sharers).unwrap_or(0);
        let others = sharers & !(1 << core);
        self.invalidate_sharers(others, line);
        // Ensure the directory has an entry recording the new owner (the line
        // may have been evicted from the inclusive L3; re-install it).
        let updated = self.sockets[home].update(line, |e| {
            e.sharers = 1 << core;
            e.owner = Some(core as u32);
        });
        if !updated {
            let entry = DirEntry { dirty: true, sharers: 1 << core, owner: Some(core as u32) };
            if let Some(victim) = self.sockets[home].insert(line, entry) {
                self.back_invalidate(victim.sharers, victim.line);
                if victim.dirty {
                    self.stats.dram_writebacks += 1;
                }
            }
        }
        latency
    }

    /// Invalidates `line` in the private caches of every core in `mask`.
    fn invalidate_sharers(&mut self, mask: u64, line: u64) {
        let mut mask = mask;
        while mask != 0 {
            let core = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            if core < self.cores.len() {
                self.invalidate_private(core, line);
            }
        }
    }

    /// Invalidation triggered by an L3 eviction (inclusion): dirty private
    /// copies are written back to DRAM.
    fn back_invalidate(&mut self, mask: u64, line: u64) {
        let mut mask = mask;
        let mut dirty = false;
        while mask != 0 {
            let core = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            if core < self.cores.len() {
                dirty |= self.invalidate_private(core, line);
            }
        }
        if dirty {
            self.stats.dram_writebacks += 1;
        }
    }

    /// Invalidates `line` in one core's private caches.  Returns `true` if a
    /// modified copy was dropped.
    fn invalidate_private(&mut self, core: usize, line: u64) -> bool {
        let caches = &mut self.cores[core];
        let mut dirty = false;
        if let Some(d) = caches.l1d.invalidate(line) {
            dirty |= d;
            self.stats.invalidations += 1;
        }
        if caches.l1i.invalidate(line).is_some() {
            self.stats.invalidations += 1;
        }
        if let Some(d) = caches.l2.invalidate(line) {
            dirty |= d;
            self.stats.invalidations += 1;
        }
        dirty
    }

    /// Fills the L1 (instruction or data) with `line`, spilling any dirty
    /// victim into the L2.
    fn fill_l1(&mut self, core: usize, line: u64, state: LineState, is_instr: bool) {
        let victim = if is_instr {
            self.cores[core].l1i.insert(line, LineState::Shared)
        } else {
            self.cores[core].l1d.insert(line, state)
        };
        if let Some(victim) = victim {
            if victim.dirty {
                // Dirty L1 victims merge into the L2 copy (inclusion means the
                // line is normally present there).
                if !self.cores[core].l2.set_state(victim.line, LineState::Modified) {
                    self.spill_into_l2(core, victim.line);
                }
            }
        }
    }

    /// Fills the private L2 with `line`, writing back any dirty victim to the
    /// home L3 and keeping the directory consistent.
    fn fill_l2(&mut self, core: usize, line: u64, state: LineState) {
        if let Some(victim) = self.cores[core].l2.insert(line, state) {
            self.handle_l2_victim(core, victim.line, victim.dirty);
        }
    }

    /// Re-inserts a dirty line into the L2 (used when an L1 victim's L2 copy
    /// has already been evicted).
    fn spill_into_l2(&mut self, core: usize, line: u64) {
        if let Some(victim) = self.cores[core].l2.insert(line, LineState::Modified) {
            self.handle_l2_victim(core, victim.line, victim.dirty);
        }
    }

    fn handle_l2_victim(&mut self, core: usize, line: u64, dirty: bool) {
        // Maintain L1 ⊆ L2 inclusion.
        let mut dirty = dirty;
        if let Some(d) = self.cores[core].l1d.invalidate(line) {
            dirty |= d;
        }
        self.cores[core].l1i.invalidate(line);
        let home = self.home_socket(line);
        let updated = self.sockets[home].update(line, |e| {
            if dirty {
                e.dirty = true;
            }
            e.sharers &= !(1u64 << core);
            if e.owner == Some(core as u32) {
                e.owner = None;
            }
        });
        if dirty && !updated {
            // The L3 copy is gone (non-inclusive corner); write straight to DRAM.
            self.stats.dram_writebacks += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy(cores: usize) -> MemoryHierarchy {
        MemoryHierarchy::new(&MemoryConfig::scaled(), cores)
    }

    #[test]
    fn cold_miss_then_warm_hit() {
        let mut h = hierarchy(2);
        let miss = h.access(0, 0x10_000, false);
        assert_eq!(miss.level, ServiceLevel::Dram);
        assert!(miss.dram_access);
        let hit = h.access(0, 0x10_000, false);
        assert_eq!(hit.level, ServiceLevel::L1);
        assert_eq!(hit.latency, 4);
        assert_eq!(h.stats().dram_accesses, 1);
        assert_eq!(h.stats().l1_hits, 1);
    }

    #[test]
    fn dirty_data_transferred_between_cores() {
        let mut h = hierarchy(2);
        h.access(0, 0x20_000, true); // core 0 owns the line (Modified)
        let read = h.access(1, 0x20_000, false);
        assert_eq!(read.level, ServiceLevel::RemoteCache);
        assert!(!read.dram_access);
        // Both cores now share the line.
        assert_eq!(h.access(0, 0x20_000, false).level, ServiceLevel::L1);
        assert_eq!(h.access(1, 0x20_000, false).level, ServiceLevel::L1);
    }

    #[test]
    fn write_invalidates_other_sharers() {
        let mut h = hierarchy(2);
        h.access(0, 0x30_000, false);
        h.access(1, 0x30_000, false);
        // Core 1 upgrades; core 0's copy must disappear.
        let upgrade = h.access(1, 0x30_000, true);
        assert_eq!(upgrade.level, ServiceLevel::L3);
        assert!(h.stats().invalidations > 0);
        let reread = h.access(0, 0x30_000, false);
        // Core 0 misses privately and gets the dirty data from core 1.
        assert_eq!(reread.level, ServiceLevel::RemoteCache);
    }

    #[test]
    fn instruction_fetches_hit_after_first_touch() {
        let mut h = hierarchy(1);
        let first = h.fetch_instruction(0, 0x4000_0000);
        assert_eq!(first.level, ServiceLevel::Dram);
        let second = h.fetch_instruction(0, 0x4000_0000);
        assert_eq!(second.level, ServiceLevel::L1);
        assert_eq!(h.stats().instruction_fetches, 2);
    }

    #[test]
    fn aggregate_llc_capacity_grows_with_sockets() {
        let config = MemoryConfig::scaled();
        // Working set of 8192 lines (512 KiB): fits in 4 sockets' L3 (16K lines
        // total is not needed — 4x256 KiB = 1 MiB) but not in one socket (256 KiB).
        let lines: Vec<u64> = (0..8192u64).map(|i| i * 64).collect();
        let mut small = MemoryHierarchy::new(&config, 8);
        let mut large = MemoryHierarchy::new(&config, 32);
        for pass in 0..3 {
            for &addr in &lines {
                // Interleave requesting cores so all sockets participate.
                let core_small = (addr / 64 % 8) as usize;
                let core_large = (addr / 64 % 32) as usize;
                small.access(core_small, addr, false);
                large.access(core_large, addr, false);
                let _ = pass;
            }
        }
        let small_dram = small.stats().dram_accesses;
        let large_dram = large.stats().dram_accesses;
        assert!(
            large_dram * 2 < small_dram,
            "32-core machine should capture the working set: {large_dram} vs {small_dram}"
        );
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut h = hierarchy(2);
        for i in 0..100u64 {
            h.access((i % 2) as usize, 0x1000 + i * 64, i % 3 == 0);
        }
        let snap = h.snapshot();
        assert!(snap.resident_lines() > 0);
        let warm = h.access(0, 0x1000, false);
        h.clear();
        let cold = h.access(0, 0x1000, false);
        assert!(cold.latency > warm.latency);
        h.restore(&snap);
        let restored = h.access(0, 0x1000, false);
        assert_eq!(restored.latency, warm.latency);
    }

    #[test]
    fn reset_stats_keeps_cache_contents() {
        let mut h = hierarchy(1);
        h.access(0, 0x5000, false);
        h.reset_stats();
        assert_eq!(h.stats().data_accesses, 0);
        assert_eq!(h.access(0, 0x5000, false).level, ServiceLevel::L1);
    }

    #[test]
    #[should_panic]
    fn too_many_cores_rejected() {
        let _ = MemoryHierarchy::new(&MemoryConfig::scaled(), 65);
    }
}
