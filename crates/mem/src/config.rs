use serde::{Deserialize, Serialize};

/// Geometry and latency of a single cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Number of ways per set.
    pub associativity: usize,
    /// Access latency in core cycles.
    pub latency_cycles: u64,
}

impl CacheConfig {
    /// Creates a cache configuration.
    pub fn new(size_bytes: u64, associativity: usize, latency_cycles: u64) -> Self {
        Self { size_bytes, associativity, latency_cycles }
    }

    /// Number of sets for the given line size.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero size, zero ways, or a
    /// capacity that is not a multiple of `associativity * line_bytes`).
    pub fn num_sets(&self, line_bytes: u64) -> usize {
        assert!(self.size_bytes > 0 && self.associativity > 0, "degenerate cache geometry");
        let lines = self.size_bytes / line_bytes;
        assert!(
            lines >= self.associativity as u64 && lines.is_multiple_of(self.associativity as u64),
            "cache size {} not divisible into {}-way sets of {}-byte lines",
            self.size_bytes,
            self.associativity,
            line_bytes
        );
        (lines / self.associativity as u64) as usize
    }

    /// Total number of cache lines.
    pub fn num_lines(&self, line_bytes: u64) -> u64 {
        self.size_bytes / line_bytes
    }
}

/// Configuration of the full memory hierarchy and its topology.
///
/// Mirrors Table I of the paper: per-core private L1I/L1D and L2, one shared
/// L3 per `cores_per_socket` cores, MSI directory coherence and a fixed
/// DRAM latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryConfig {
    /// Cache line size in bytes (64 throughout the paper).
    pub line_bytes: u64,
    /// Per-core L1 instruction cache.
    pub l1i: CacheConfig,
    /// Per-core L1 data cache.
    pub l1d: CacheConfig,
    /// Per-core unified L2 cache.
    pub l2: CacheConfig,
    /// Shared L3 cache (one instance per socket).
    pub l3: CacheConfig,
    /// Cores sharing one L3 / one socket.
    pub cores_per_socket: usize,
    /// DRAM access latency in core cycles.
    pub dram_latency_cycles: u64,
    /// Extra latency for reaching a remote socket's L3 or a remote core's
    /// private cache.
    pub remote_penalty_cycles: u64,
}

impl MemoryConfig {
    /// The paper's Table I configuration: 32 KB L1I (4-way, 4 cycles),
    /// 32 KB L1D (8-way, 4 cycles), 256 KB L2 (8-way, 8 cycles), 8 MB shared
    /// L3 per 8-core socket (16-way, 30 cycles) and 65 ns DRAM (≈ 173 cycles
    /// at 2.66 GHz).
    pub fn table1() -> Self {
        Self {
            line_bytes: 64,
            l1i: CacheConfig::new(32 * 1024, 4, 4),
            l1d: CacheConfig::new(32 * 1024, 8, 4),
            l2: CacheConfig::new(256 * 1024, 8, 8),
            l3: CacheConfig::new(8 * 1024 * 1024, 16, 30),
            cores_per_socket: 8,
            dram_latency_cycles: 173,
            remote_penalty_cycles: 40,
        }
    }

    /// A proportionally scaled-down hierarchy (32x smaller caches) matched to
    /// the scaled-down synthetic workloads: the working-set-to-capacity
    /// ratios, and therefore the qualitative cache behaviour the paper's
    /// results depend on, are preserved while full-application ground-truth
    /// simulation stays fast.
    pub fn scaled() -> Self {
        Self {
            line_bytes: 64,
            l1i: CacheConfig::new(2 * 1024, 4, 4),
            l1d: CacheConfig::new(4 * 1024, 8, 4),
            l2: CacheConfig::new(32 * 1024, 8, 8),
            l3: CacheConfig::new(256 * 1024, 16, 30),
            cores_per_socket: 8,
            dram_latency_cycles: 173,
            remote_penalty_cycles: 40,
        }
    }

    /// An aggressively shrunk hierarchy for fast unit and integration tests:
    /// the same topology and latencies as Table I with capacities reduced so
    /// far that even tiny test workloads (workload scale ≈ 0.05) exceed the
    /// LLC, exhibiting the same qualitative behaviour as the full-size runs.
    pub fn tiny() -> Self {
        Self {
            line_bytes: 64,
            l1i: CacheConfig::new(1024, 4, 4),
            l1d: CacheConfig::new(1024, 8, 4),
            l2: CacheConfig::new(4 * 1024, 8, 8),
            l3: CacheConfig::new(32 * 1024, 16, 30),
            cores_per_socket: 8,
            dram_latency_cycles: 173,
            remote_penalty_cycles: 40,
        }
    }

    /// Number of sockets needed for `num_cores` cores.
    pub fn num_sockets(&self, num_cores: usize) -> usize {
        num_cores.div_ceil(self.cores_per_socket)
    }

    /// Combined last-level-cache capacity visible to `num_cores` cores, in
    /// bytes.  This is the bound the paper's MRU warmup uses for the amount
    /// of replayed state per core.
    pub fn llc_total_bytes(&self, num_cores: usize) -> u64 {
        self.l3.size_bytes * self.num_sockets(num_cores) as u64
    }

    /// Combined last-level-cache capacity in lines.
    pub fn llc_total_lines(&self, num_cores: usize) -> u64 {
        self.llc_total_bytes(num_cores) / self.line_bytes
    }
}

impl Default for MemoryConfig {
    fn default() -> Self {
        Self::scaled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let c = MemoryConfig::table1();
        assert_eq!(c.l1d.size_bytes, 32 * 1024);
        assert_eq!(c.l1d.associativity, 8);
        assert_eq!(c.l2.size_bytes, 256 * 1024);
        assert_eq!(c.l3.size_bytes, 8 * 1024 * 1024);
        assert_eq!(c.cores_per_socket, 8);
        // 8 cores -> one socket (8 MB); 32 cores -> four sockets (32 MB).
        assert_eq!(c.llc_total_bytes(8), 8 * 1024 * 1024);
        assert_eq!(c.llc_total_bytes(32), 32 * 1024 * 1024);
    }

    #[test]
    fn scaled_preserves_capacity_ordering() {
        let s = MemoryConfig::scaled();
        let t = MemoryConfig::table1();
        assert_eq!(t.l2.size_bytes / t.l1d.size_bytes, s.l2.size_bytes / s.l1d.size_bytes);
        assert!(s.l1d.size_bytes < s.l2.size_bytes && s.l2.size_bytes < s.l3.size_bytes);
        // Same latencies and topology as Table I; only capacities shrink.
        assert_eq!(s.l3.latency_cycles, t.l3.latency_cycles);
        assert_eq!(s.cores_per_socket, t.cores_per_socket);
    }

    #[test]
    fn set_counts() {
        let c = CacheConfig::new(4 * 1024, 8, 4);
        assert_eq!(c.num_sets(64), 8);
        assert_eq!(c.num_lines(64), 64);
    }

    #[test]
    #[should_panic]
    fn bad_geometry_panics() {
        // 1000 bytes is 15 lines, which does not divide into 4-way sets.
        let c = CacheConfig::new(1000, 4, 1);
        let _ = c.num_sets(64);
    }

    #[test]
    fn socket_count_rounds_up() {
        let c = MemoryConfig::scaled();
        assert_eq!(c.num_sockets(8), 1);
        assert_eq!(c.num_sockets(9), 2);
        assert_eq!(c.num_sockets(32), 4);
    }
}
