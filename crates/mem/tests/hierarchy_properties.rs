//! Property-based tests of the cache hierarchy invariants.

use bp_mem::{Cache, CacheConfig, LineState, MemoryConfig, MemoryHierarchy, ServiceLevel};
use proptest::prelude::*;

/// A random access pattern: (core, line, is_write).
fn accesses(cores: usize) -> impl Strategy<Value = Vec<(usize, u64, bool)>> {
    proptest::collection::vec((0..cores, 0u64..512, any::<bool>()), 1..400)
        .prop_map(|v| v.into_iter().map(|(c, l, w)| (c, l * 64, w)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A cache never holds more lines than its capacity, and a line that was
    /// just inserted is always resident.
    #[test]
    fn cache_occupancy_bounded(lines in proptest::collection::vec(0u64..256, 1..300)) {
        let config = CacheConfig::new(2048, 4, 1); // 32 lines
        let mut cache = Cache::new(&config, 64);
        for &line in &lines {
            cache.insert(line, LineState::Shared);
            prop_assert!(cache.contains(line));
            prop_assert!(cache.occupancy() <= cache.capacity_lines());
        }
    }

    /// Replaying the same access sequence on a fresh hierarchy gives exactly
    /// the same statistics (full determinism).
    #[test]
    fn hierarchy_is_deterministic(pattern in accesses(4)) {
        let config = MemoryConfig::tiny();
        let mut a = MemoryHierarchy::new(&config, 4);
        let mut b = MemoryHierarchy::new(&config, 4);
        for &(core, addr, write) in &pattern {
            let ra = a.access(core, addr, write);
            let rb = b.access(core, addr, write);
            prop_assert_eq!(ra, rb);
        }
        prop_assert_eq!(a.stats(), b.stats());
    }

    /// Snapshot/restore reproduces subsequent behaviour exactly.
    #[test]
    fn snapshot_restore_equivalence(warm in accesses(2), probe in accesses(2)) {
        let config = MemoryConfig::tiny();
        let mut hierarchy = MemoryHierarchy::new(&config, 2);
        for &(core, addr, write) in &warm {
            hierarchy.access(core, addr, write);
        }
        let snapshot = hierarchy.snapshot();

        let mut continued = hierarchy.clone();
        continued.reset_stats();
        let direct: Vec<_> = probe
            .iter()
            .map(|&(core, addr, write)| continued.access(core, addr, write))
            .collect();

        let mut restored = MemoryHierarchy::new(&config, 2);
        restored.restore(&snapshot);
        restored.reset_stats();
        let replayed: Vec<_> = probe
            .iter()
            .map(|&(core, addr, write)| restored.access(core, addr, write))
            .collect();

        prop_assert_eq!(direct, replayed);
        prop_assert_eq!(continued.stats(), restored.stats());
    }

    /// Every access is serviced by exactly one level and its latency is at
    /// least the L1 latency; service-level counters add up to the access
    /// count.
    #[test]
    fn accounting_adds_up(pattern in accesses(3)) {
        let config = MemoryConfig::tiny();
        let mut hierarchy = MemoryHierarchy::new(&config, 3);
        for &(core, addr, write) in &pattern {
            let result = hierarchy.access(core, addr, write);
            prop_assert!(result.latency >= config.l1d.latency_cycles);
            prop_assert!(matches!(
                result.level,
                ServiceLevel::L1
                    | ServiceLevel::L2
                    | ServiceLevel::L3
                    | ServiceLevel::RemoteCache
                    | ServiceLevel::Dram
            ));
        }
        let stats = hierarchy.stats();
        prop_assert_eq!(stats.data_accesses, pattern.len() as u64);
        prop_assert_eq!(
            stats.l1_hits + stats.l2_hits + stats.l3_hits + stats.remote_cache_hits
                + stats.dram_accesses + stats.upgrades,
            stats.data_accesses
        );
    }

    /// After a write by one core, a read of the same address by another core
    /// must observe coherent data (serviced by the owner's cache, the shared
    /// cache or DRAM after a writeback — never silently from its own stale L1).
    #[test]
    fn writes_invalidate_remote_readers(addr in (0u64..128).prop_map(|l| l * 64)) {
        let config = MemoryConfig::tiny();
        let mut hierarchy = MemoryHierarchy::new(&config, 2);
        // Core 1 caches the line, core 0 then writes it.
        hierarchy.access(1, addr, false);
        hierarchy.access(0, addr, true);
        let reread = hierarchy.access(1, addr, false);
        prop_assert_ne!(reread.level, ServiceLevel::L1);
    }
}
